package core

import (
	"strings"
	"testing"

	"lbtrust/internal/datalog"
	"lbtrust/internal/workspace"
)

// twoPrincipals builds alice and bob on one node with the given scheme and
// whatever key material it needs.
func twoPrincipals(t *testing.T, scheme Scheme) (*System, *Principal, *Principal) {
	t.Helper()
	sys := NewSystem()
	alice, err := sys.AddPrincipal("alice")
	if err != nil {
		t.Fatalf("alice: %v", err)
	}
	bob, err := sys.AddPrincipal("bob")
	if err != nil {
		t.Fatalf("bob: %v", err)
	}
	switch scheme {
	case SchemeRSA:
		if err := sys.EstablishRSA("alice"); err != nil {
			t.Fatalf("rsa alice: %v", err)
		}
		if err := sys.EstablishRSA("bob"); err != nil {
			t.Fatalf("rsa bob: %v", err)
		}
	case SchemeHMAC:
		if err := sys.EstablishSharedSecret("alice", "bob"); err != nil {
			t.Fatalf("shared secret: %v", err)
		}
	}
	for _, p := range []*Principal{alice, bob} {
		if err := p.UseScheme(scheme); err != nil {
			t.Fatalf("scheme %s for %s: %v", scheme, p.Name(), err)
		}
	}
	return sys, alice, bob
}

func testSchemeRoundTrip(t *testing.T, scheme Scheme) {
	sys, alice, bob := twoPrincipals(t, scheme)
	if err := bob.TrustAll(); err != nil {
		t.Fatalf("trust: %v", err)
	}
	// alice tells bob a fact; bob's says1 activates it.
	if err := alice.Say("bob", `greeting(hello).`); err != nil {
		t.Fatalf("say: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got, err := bob.Query(`greeting(X)`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(got) != 1 || got[0].At(0).Key() != datalog.Sym("hello").Key() {
		t.Errorf("bob's greeting = %v, want [hello] (scheme %s)", got, scheme)
	}
	// The says fact at bob must record alice as the source.
	says, _ := bob.Query(`says(alice, me, R)`)
	if len(says) != 1 {
		t.Errorf("bob has %d says facts from alice, want 1", len(says))
	}
}

func TestPlaintextRoundTrip(t *testing.T) { testSchemeRoundTrip(t, SchemePlaintext) }
func TestHMACRoundTrip(t *testing.T)      { testSchemeRoundTrip(t, SchemeHMAC) }
func TestRSARoundTrip(t *testing.T)       { testSchemeRoundTrip(t, SchemeRSA) }

func TestRuleExportBinderStyle(t *testing.T) {
	// Binder's defining capability: exporting a rule, not just facts.
	sys, alice, bob := twoPrincipals(t, SchemeRSA)
	if err := bob.TrustAll(); err != nil {
		t.Fatalf("trust: %v", err)
	}
	if err := bob.LoadProgram(`data(1). data(2).`); err != nil {
		t.Fatalf("bob data: %v", err)
	}
	if err := alice.Say("bob", `doubled(X) <- data(X).`); err != nil {
		t.Fatalf("say rule: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, _ := bob.Query(`doubled(X)`); len(got) != 2 {
		t.Errorf("bob derived %d doubled facts, want 2 (imported rule should run)", len(got))
	}
}

func TestForgedExportRejected(t *testing.T) {
	sys, _, bob := twoPrincipals(t, SchemeRSA)
	// Inject a forged import tuple directly into bob's context: exp2 would
	// derive says(alice,bob,...), but exp3 must reject it since the
	// signature does not verify.
	forged := datalog.NewCode(datalog.MustParseClause(`evil(1).`))
	err := bob.Update(func(tx *workspace.Tx) error {
		return tx.AssertTuple("import", datalog.NewTuple(
			datalog.Sym("bob"), datalog.Sym("alice"), forged, datalog.String(strings.Repeat("00", 128)),
		))
	})
	if err == nil {
		t.Fatal("forged export should violate exp3")
	}
	if !strings.Contains(err.Error(), "exp3") {
		t.Errorf("violation should cite exp3, got %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, _ := bob.Query(`evil(X)`); len(got) != 0 {
		t.Error("forged fact must not activate")
	}
}

func TestWrongKeySignatureRejected(t *testing.T) {
	// carol signs with her own key but claims to be alice.
	sys, _, bob := twoPrincipals(t, SchemeRSA)
	carol, err := sys.AddPrincipal("carol")
	if err != nil {
		t.Fatalf("carol: %v", err)
	}
	if err := sys.EstablishRSA("carol"); err != nil {
		t.Fatalf("rsa carol: %v", err)
	}
	if err := carol.UseScheme(SchemeRSA); err != nil {
		t.Fatalf("scheme: %v", err)
	}
	// Sign a rule with carol's key.
	code := datalog.NewCode(datalog.MustParseClause(`imposter(1).`))
	priv, _ := carol.Keys().RSAKey("carol")
	sig, err := carol.Keys().SignRSA(code, priv)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	// Inject into bob as if from alice.
	err = bob.Update(func(tx *workspace.Tx) error {
		return tx.AssertTuple("import", datalog.NewTuple(
			datalog.Sym("bob"), datalog.Sym("alice"), code, datalog.String(sig),
		))
	})
	if err == nil {
		t.Fatal("signature under the wrong principal's key must be rejected")
	}
}

func TestSchemeReconfiguration(t *testing.T) {
	// The paper's headline: changing schemes swaps two clauses and leaves
	// policies untouched. The receiver drops history signed under the old
	// scheme; the sender's new signer re-signs it, so after one Sync the
	// history reappears under the new scheme.
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	if err := bob.TrustAll(); err != nil {
		t.Fatalf("trust: %v", err)
	}
	if err := alice.Say("bob", `m(1).`); err != nil {
		t.Fatalf("say: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, _ := bob.Query(`m(1)`); len(got) != 1 {
		t.Fatal("plaintext message lost")
	}
	// Upgrade both ends to HMAC.
	if err := sys.EstablishSharedSecret("alice", "bob"); err != nil {
		t.Fatalf("secret: %v", err)
	}
	if err := bob.ForgetCommunication(); err != nil {
		t.Fatalf("forget: %v", err)
	}
	if err := bob.UseScheme(SchemeHMAC); err != nil {
		t.Fatalf("bob hmac: %v", err)
	}
	if err := alice.UseScheme(SchemeHMAC); err != nil {
		t.Fatalf("alice hmac: %v", err)
	}
	if err := alice.Say("bob", `m(2).`); err != nil {
		t.Fatalf("say 2: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	// m(1) was re-signed under HMAC and re-shipped; m(2) is new traffic.
	if got, _ := bob.Query(`m(1)`); len(got) != 1 {
		t.Error("re-signed history should reappear after reconfiguration")
	}
	if got, _ := bob.Query(`m(2)`); len(got) != 1 {
		t.Error("HMAC message lost after reconfiguration")
	}
	if alice.Scheme() != SchemeHMAC || bob.Scheme() != SchemeHMAC {
		t.Error("scheme not recorded")
	}
}

func TestDelegationAcrossContexts(t *testing.T) {
	// alice delegates credit to bob; bob's says about credit are accepted,
	// carol's are not.
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	carol, err := sys.AddPrincipal("carol")
	if err != nil {
		t.Fatalf("carol: %v", err)
	}
	if err := alice.EnableDelegation(); err != nil {
		t.Fatalf("enable delegation: %v", err)
	}
	if err := alice.Delegate("bob", "credit"); err != nil {
		t.Fatalf("delegate: %v", err)
	}
	if err := bob.Say("alice", `credit(carol).`); err != nil {
		t.Fatalf("bob say: %v", err)
	}
	if err := carol.Say("alice", `blacklisted(bob).`); err != nil {
		t.Fatalf("carol say: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, _ := alice.Query(`credit(carol)`); len(got) != 1 {
		t.Error("delegated credit fact should hold at alice")
	}
	if got, _ := alice.Query(`blacklisted(bob)`); len(got) != 0 {
		t.Error("carol is not a delegate; her statement must not activate")
	}
}

func TestDelegationDepthChain(t *testing.T) {
	// alice -> bob with depth 1: bob may delegate to carol (consuming the
	// bound), carol may not delegate further.
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	carol, err := sys.AddPrincipal("carol")
	if err != nil {
		t.Fatalf("carol: %v", err)
	}
	dave, err := sys.AddPrincipal("dave")
	if err != nil {
		t.Fatalf("dave: %v", err)
	}
	_ = dave
	for _, p := range []*Principal{alice, bob, carol} {
		if err := p.EnableDelegation(); err != nil {
			t.Fatalf("enable %s: %v", p.Name(), err)
		}
	}
	if err := alice.Delegate("bob", "credit"); err != nil {
		t.Fatalf("alice delegate: %v", err)
	}
	if err := alice.SetDelegationDepth("bob", "credit", 1); err != nil {
		t.Fatalf("depth: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// bob received inferredDelDepth(alice,bob,credit,1).
	if got, _ := bob.Query(`inferredDelDepth(alice, me, credit, N)`); len(got) != 1 {
		t.Fatalf("bob's inferred depth facts = %v, want 1", got)
	}
	// bob delegates to carol: allowed (1 > 0), carol receives bound 0.
	if err := bob.Delegate("carol", "credit"); err != nil {
		t.Fatalf("bob delegate: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	if got, _ := carol.Query(`inferredDelDepth(bob, me, credit, 0)`); len(got) != 1 {
		t.Fatal("carol should hold a zero bound")
	}
	// carol delegating further violates dd4.
	err = carol.Delegate("dave", "credit")
	if err == nil {
		t.Fatal("carol's delegation should violate the depth bound")
	}
	if !strings.Contains(err.Error(), "dd4") {
		t.Errorf("violation should cite dd4, got %v", err)
	}
}

func TestNonConformingDelegationDetectedLate(t *testing.T) {
	// Section 4.2.1's "interesting case": a delegation exists before the
	// depth restriction arrives; the propagated zero bound then flags the
	// violating principal.
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	carol, err := sys.AddPrincipal("carol")
	if err != nil {
		t.Fatalf("carol: %v", err)
	}
	_ = carol
	for _, p := range []*Principal{alice, bob} {
		if err := p.EnableDelegation(); err != nil {
			t.Fatalf("enable %s: %v", p.Name(), err)
		}
	}
	// bob already delegates credit to carol.
	if err := bob.Delegate("carol", "credit"); err != nil {
		t.Fatalf("bob delegate: %v", err)
	}
	// alice now delegates to bob with depth 0: bob must not delegate, but
	// he already does. The violation surfaces at bob when the inferred
	// bound arrives.
	if err := alice.Delegate("bob", "credit"); err != nil {
		t.Fatalf("alice delegate: %v", err)
	}
	if err := alice.SetDelegationDepth("bob", "credit", 0); err != nil {
		t.Fatalf("depth: %v", err)
	}
	_ = sys.Sync() // the rejection is recorded, not fatal
	node, _ := sys.Runtime().Node("local")
	found := false
	for _, rej := range node.Rejected() {
		if rej.Target == "bob" && strings.Contains(rej.Err.Error(), "dd4") {
			found = true
		}
	}
	if !found {
		t.Error("bob's non-conforming delegation should be rejected by dd4 on arrival of the bound")
	}
}

func TestDelegationWidth(t *testing.T) {
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	if _, err := sys.AddPrincipal("carol"); err != nil {
		t.Fatalf("carol: %v", err)
	}
	for _, p := range []*Principal{alice, bob} {
		if err := p.EnableDelegation(); err != nil {
			t.Fatalf("enable: %v", err)
		}
		if err := p.EnableDelegationWidth(); err != nil {
			t.Fatalf("enable width: %v", err)
		}
	}
	// Chain restricted to group trusted; bob is in it, carol is not.
	if err := bob.JoinGroup("bob", "trusted"); err != nil {
		t.Fatalf("group: %v", err)
	}
	if err := alice.Delegate("bob", "credit"); err != nil {
		t.Fatalf("delegate: %v", err)
	}
	if err := alice.SetDelegationWidth("bob", "credit", "trusted"); err != nil {
		t.Fatalf("width: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// bob delegating to carol violates dw4 (carol not in trusted) at bob.
	err := bob.Delegate("carol", "credit")
	if err == nil {
		t.Fatal("delegation outside the width group must fail")
	}
	if !strings.Contains(err.Error(), "dw4") {
		t.Errorf("violation should cite dw4, got %v", err)
	}
}

func TestAuthorizationMayReadWrite(t *testing.T) {
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	if err := bob.TrustAll(); err != nil {
		t.Fatalf("trust: %v", err)
	}
	if err := bob.EnableAuthorization(); err != nil {
		t.Fatalf("enable auth: %v", err)
	}
	if err := bob.GrantWrite("alice", "news"); err != nil {
		t.Fatalf("grant: %v", err)
	}
	// alice may write news: accepted.
	if err := alice.Say("bob", `news(sunny).`); err != nil {
		t.Fatalf("say: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, _ := bob.Query(`news(sunny)`); len(got) != 1 {
		t.Error("authorized write should land")
	}
	// alice may not write gossip: rejected at bob.
	if err := alice.Say("bob", `gossip(juicy).`); err != nil {
		t.Fatalf("say 2: %v", err)
	}
	_ = sys.Sync()
	if got, _ := bob.Query(`gossip(juicy)`); len(got) != 0 {
		t.Error("unauthorized write must be rejected")
	}
	node, _ := sys.Runtime().Node("local")
	if len(node.Rejected()) == 0 {
		t.Error("the rejection should be recorded")
	}
}

func TestPullRequestResponse(t *testing.T) {
	// pull0/pull1: alice's rule imports bob's data; the request/response
	// pushes replace the top-down pull.
	sys, alice, bob := twoPrincipals(t, SchemePlaintext)
	if err := alice.EnablePull(); err != nil {
		t.Fatalf("alice pull: %v", err)
	}
	if err := bob.EnablePull(); err != nil {
		t.Fatalf("bob pull: %v", err)
	}
	// bob holds status(ok) as an active fact (his knowledge base).
	if err := bob.Update(func(tx *workspace.Tx) error {
		return tx.AddRuleSrc(`status(ok).`)
	}); err != nil {
		t.Fatalf("bob fact: %v", err)
	}
	// alice runs a rule that imports status(ok) from bob.
	if err := alice.Update(func(tx *workspace.Tx) error {
		return tx.AddRuleSrc(`healthy(bob) <- says(bob, me, [| status(ok). |]).`)
	}); err != nil {
		t.Fatalf("alice rule: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, _ := alice.Query(`healthy(bob)`); len(got) != 1 {
		t.Error("pull rewrite should fetch bob's status and derive healthy(bob)")
	}
}

func TestManyMessages(t *testing.T) {
	// A miniature of the Figure 2 workload: N messages exported and
	// imported with signatures.
	sys, alice, bob := twoPrincipals(t, SchemeHMAC)
	if err := bob.TrustAll(); err != nil {
		t.Fatalf("trust: %v", err)
	}
	const n = 50
	msgs := make([]string, n)
	for i := range msgs {
		msgs[i] = "msg(" + itoa(i) + ")."
	}
	if err := alice.SayAll("bob", msgs); err != nil {
		t.Fatalf("say all: %v", err)
	}
	if err := sys.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := bob.Count("msg"); got != n {
		t.Errorf("bob has %d msg facts, want %d", got, n)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
