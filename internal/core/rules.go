// Package core implements LBTrust itself: the security constructs of
// Section 4 of the paper (authentication via says, authenticated
// communication with reconfigurable schemes, authorization, speaks-for and
// restricted delegation, thresholds) composed from the Datalog, meta, and
// crypto substrates. The constructs are genuine rule sets in the LBTrust
// language, loaded into per-principal workspaces; Go code only wires
// workspaces, key stores, and the distribution runtime together.
package core

// BaseProgram is installed in every principal's workspace: the says
// predicate (says0 of Section 4.1), the partitioned export relation (exp0)
// and the import rule (exp2), which are shared by all authentication
// schemes. The paper's says1 rule (activate anything said to me) is NOT
// included: composed with delegation it would activate every sender's
// statements, so it is the opt-in TrustAllProgram instead; Binder-style
// policies reference says(U, me, ...) explicitly.
const BaseProgram = `
says0: says(U1,U2,R) -> prin(U1), prin(U2), rule(R).
so0: saysOut(U2,R) -> prin(U2), rule(R).
exp0: export[U1](U2,R,S) -> prin(U1), prin(U2), rule(R), string(S).
imp0: import[U1](U2,R,S) -> prin(U1), prin(U2), rule(R), string(S).
exp2: says(U,me,R) <- import[me](U,R,S).
`

// TrustAllProgram is the paper's says1 rule: every rule said to the local
// principal becomes active. It expresses an open, fully trusting context.
const TrustAllProgram = `
says1: active(R) <- says(_, me, R).
`

// Scheme selects how says is authenticated on the wire (Section 4.1.2 of
// the paper). Schemes are rule sets; switching schemes swaps two clauses
// (the export signer and the import verifier) and leaves every policy that
// uses says untouched.
type Scheme string

// The three schemes of the paper's evaluation (Figure 2).
const (
	// SchemePlaintext appends no signature: cleartext principal headers.
	SchemePlaintext Scheme = "plaintext"
	// SchemeHMAC signs each rule with a 160-bit HMAC-SHA1 tag under a
	// pairwise shared secret.
	SchemeHMAC Scheme = "hmac"
	// SchemeRSA signs each rule with a 1024-bit RSA signature.
	SchemeRSA Scheme = "rsa"
)

// schemeDef carries the signer rules and verifier constraint of a scheme.
// Each scheme signs two outbound relations: says(me,U2,R) statements and
// saysOut(U2,R) statements. saysOut is outbound-only — it never derives
// from incoming says — which lets reply rules (for example the Section 9
// threshold variant, whose vote aggregation reads says) remain
// stratifiable.
type schemeDef struct {
	signer    string // exp1 variant over says
	signerOut string // exp1b variant over saysOut
	verifier  string // exp3 variant (a constraint)
}

var schemes = map[Scheme]schemeDef{
	// exp1''/exp3'': no signature beyond the cleartext header.
	SchemePlaintext: {
		signer:    `exp1: export[U2](me,R,S) <- says(me,U2,R), U2 != me, S = "plain".`,
		signerOut: `exp1b: export[U2](me,R,S) <- saysOut(U2,R), U2 != me, S = "plain".`,
		verifier:  `exp3: says(U,me,R) -> U = me; import[me](U,R,S).`,
	},
	// exp1'/exp3' of Section 4.1.2.
	SchemeHMAC: {
		signer:    `exp1: export[U2](me,R,S) <- says(me,U2,R), U2 != me, sharedsecret(me,U2,K), hmacsign(R,K,S).`,
		signerOut: `exp1b: export[U2](me,R,S) <- saysOut(U2,R), U2 != me, sharedsecret(me,U2,K), hmacsign(R,K,S).`,
		verifier:  `exp3: says(U,me,R) -> U = me; import[me](U,R,S), sharedsecret(me,U,K), hmacverify(R,S,K).`,
	},
	// exp1/exp3 of Section 4.1.1.
	SchemeRSA: {
		signer:    `exp1: export[U2](me,R,S) <- says(me,U2,R), U2 != me, rsasign(R,S,K), rsaprivkey(me,K).`,
		signerOut: `exp1b: export[U2](me,R,S) <- saysOut(U2,R), U2 != me, rsasign(R,S,K), rsaprivkey(me,K).`,
		verifier:  `exp3: says(U,me,R) -> U = me; import[me](U,R,S), rsapubkey(U,K), rsaverify(R,S,K).`,
	},
}

// DelegationProgram implements Section 4.2: the delegates predicate with
// generated speaks-for rules (del0/del1), and delegation depth restriction
// (dd0-dd4).
//
// The paper's dd2/dd3 as printed do not propagate inferred depths across
// contexts (the receiving principal's rules never match facts whose first
// argument is the sender). We implement the stated semantics: a declared
// depth is communicated to the delegatee (dd2x), each further delegation
// decrements the received bound (dd3), and a zero bound forbids delegation
// (dd4, verbatim from the paper). See DESIGN.md.
const DelegationProgram = `
del0: delegates(U1,U2,P) -> prin(U1), prin(U2), predicate(P).
del1: active([| active(R) <- says(U2, me, R), R = [| P(T*) <- A*. |]. |]) <-
	delegates(me, U2, P).

dd0: delDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), int[64](N).
dd1: inferredDelDepth(U1,U2,P,N) -> prin(U1), prin(U2), predicate(P), int[64](N).
dd2: inferredDelDepth(me,U,P,N) <- delDepth(me,U,P,N).
dd2x: says(me,U,[| inferredDelDepth(me,U,P,N). |]) <- delDepth(me,U,P,N).
dd3: says(me,U3,[| inferredDelDepth(me,U3,P,N-1). |]) <-
	inferredDelDepth(_,me,P,N), delegates(me,U3,P), N > 0.
dd4: inferredDelDepth(_,me,P,0) -> !delegates(me,_,P).
ddAct: active(R) <- says(U, me, R), R = [| inferredDelDepth(U, me, P, N). |].
ddPred: predicate(P) <- inferredDelDepth(_,_,P,_).
`

// WidthProgram restricts delegation width (Section 4.2.1): only principals
// in the named group may appear in the delegation chain. The paper leaves
// the meta-rules to the reader ("Similar meta-rules can be formulated");
// these follow the same propagation shape as depth.
const WidthProgram = `
dw0: delWidth(U1,U2,P,G) -> prin(U1), prin(U2), predicate(P).
dw1: inferredDelWidth(U1,U2,P,G) -> prin(U1), prin(U2), predicate(P).
dw2: inferredDelWidth(me,U,P,G) <- delWidth(me,U,P,G).
dw2x: says(me,U,[| inferredDelWidth(me,U,P,G). |]) <- delWidth(me,U,P,G).
dw3: says(me,U3,[| inferredDelWidth(me,U3,P,G). |]) <-
	inferredDelWidth(_,me,P,G), delegates(me,U3,P).
dw4: inferredDelWidth(_,me,P,G), delegates(me,U,P) -> pringroup(U,G).
dwAct: active(R) <- says(U, me, R), R = [| inferredDelWidth(U, me, P, G). |].
dwPred: predicate(P) <- inferredDelWidth(_,_,P,_).
`

// AuthorizationProgram installs the Section 4.1 read/write authorization
// meta-constraints: rules said to me may only read predicates their sender
// may read and only write predicates their sender may write. Facts are
// rules with heads, so saying a fact requires mayWrite on its predicate.
const AuthorizationProgram = `
ar1: says(U, me, [| A <- P(T*), A*. |]) -> U = me; mayRead(U,P).
ar2: says(U, me, [| P(T*) <- A*. |]) -> U = me; mayWrite(U,P).
`

// PullProgram converts top-down "pull" requests into two pushes
// (Section 5.1, pull0/pull1). Our pull1 answers a request with the
// requested rule when it is present in the local active table, which keeps
// the generated response safe; see DESIGN.md for the deviation note.
const PullProgram = `
pull0: says(me,X,[| request(R). |]) <- active([| A <- says(X,me,R), A*. |]), X != me.
pull1: says(me,X,R) <- says(X,me,[| request(R). |]), active(R).
`

// ThresholdTemplate is the Section 4.2.2 unweighted threshold structure:
// an operation is authorized when at least K of the principals in a group
// concur. Instantiated per predicate by d1lp.Threshold.
const ThresholdTemplate = `
wd1: %[1]s(C) <- lbThresholdCount:%[1]s(C,N), N >= %[2]d.
wd2: lbThresholdCount:%[1]s(C,N) <- agg<<N = count(U)>>
	pringroup(U, %[3]s),
	says(U, me, [| %[1]s(C). |]).
`

// WeightedThresholdTemplate generalizes to weighted delegation: principals
// carry reliability weights and the total must reach the threshold.
const WeightedThresholdTemplate = `
wt1: %[1]s(C) <- lbThresholdWeight:%[1]s(C,N), N >= %[2]d.
wt2: lbThresholdWeight:%[1]s(C,N) <- agg<<N = total(W)>>
	reliability(U, W),
	says(U, me, [| %[1]s(C). |]).
`
