package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"lbtrust/internal/dist"
	"lbtrust/internal/store"
)

// TestRecoverTruncatedSystemWAL simulates kill -9 at arbitrary points of
// the log: recovery must come up clean on every prefix, answer queries
// from the surviving records, and keep working afterwards.
func TestRecoverTruncatedSystemWAL(t *testing.T) {
	dir := t.TempDir()
	sys := buildDurableSystem(t, dir, store.FsyncOff)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	walFiles, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(walFiles) != 1 {
		t.Fatalf("wal files: %v (%v)", walFiles, err)
	}
	full, err := os.ReadFile(walFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.97} {
		cut := int(float64(len(full)) * frac)
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(walFiles[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenSystem(sub, DurableOptions{Fsync: store.FsyncOff})
		if err != nil {
			t.Fatalf("cut at %.0f%%: open: %v", frac*100, err)
		}
		// Whatever survived must be a working system: Sync converges and
		// recovered principals answer queries.
		if err := re.Sync(); err != nil {
			t.Errorf("cut at %.0f%%: sync: %v", frac*100, err)
		}
		if bob, ok := re.Principal("bob"); ok {
			if _, err := bob.Query("greeting(X)"); err != nil {
				t.Errorf("cut at %.0f%%: query: %v", frac*100, err)
			}
		}
		if err := re.Close(); err != nil {
			t.Errorf("cut at %.0f%%: close: %v", frac*100, err)
		}
	}
}

// flakyTransport wraps a transport and fails every Send after a fuse
// burns, interrupting a Sync partway through a round.
type flakyTransport struct {
	inner dist.Transport
	fuse  atomic.Int64 // sends allowed before failure
}

func (f *flakyTransport) Endpoint(name string) (dist.Endpoint, error) {
	ep, err := f.inner.Endpoint(name)
	if err != nil {
		return nil, err
	}
	return &flakyEndpoint{Endpoint: ep, tr: f}, nil
}

func (f *flakyTransport) Close() error { return f.inner.Close() }

type flakyEndpoint struct {
	dist.Endpoint
	tr *flakyTransport
}

func (ep *flakyEndpoint) Send(to string, env *dist.Envelope) error {
	if ep.tr.fuse.Add(-1) < 0 {
		return fmt.Errorf("flaky transport: fuse burned")
	}
	return ep.Endpoint.Send(to, env)
}

// TestSnapshotMidSync interrupts a Sync with a transport failure, takes a
// checkpoint of the half-delivered state, crashes, recovers, and finishes
// the protocol: the result must match a run that was never interrupted.
func TestSnapshotMidSync(t *testing.T) {
	build := func(dir string, tr dist.Transport) (*System, *Principal, *Principal) {
		t.Helper()
		var sys *System
		var err error
		if dir != "" {
			sys, err = OpenSystem(dir, DurableOptions{Transport: tr, Fsync: store.FsyncOff})
		} else {
			sys, err = NewSystemWith(tr)
		}
		if err != nil {
			t.Fatal(err)
		}
		alice, err := sys.AddPrincipal("alice")
		if err != nil {
			t.Fatal(err)
		}
		bob, err := sys.AddPrincipal("bob")
		if err != nil {
			t.Fatal(err)
		}
		if err := bob.TrustAll(); err != nil {
			t.Fatal(err)
		}
		return sys, alice, bob
	}
	say := func(p *Principal, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := p.Say("bob", fmt.Sprintf("m(v%d).", i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: never interrupted.
	refSys, refAlice, refBob := build("", dist.NewMemNetwork())
	say(refAlice, 6)
	if err := refSys.Sync(); err != nil {
		t.Fatal(err)
	}
	want := queryStrings(t, refBob, "m(X)")
	refSys.Close()

	// Interrupted run: per-message Say transactions produce per-batch
	// envelopes; the fuse burns after the first send of the Sync.
	dir := t.TempDir()
	flaky := &flakyTransport{inner: dist.NewMemNetwork()}
	flaky.fuse.Store(1 << 30)
	sys, alice, bob := build(dir, flaky)
	say(alice, 3)
	if err := sys.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	say(alice, 6) // three of these are new
	flaky.fuse.Store(0)
	if err := sys.Sync(); err == nil {
		t.Fatal("sync with burned fuse did not fail")
	}
	// Snapshot the half-synced state, then crash.
	if err := sys.Checkpoint(); err != nil {
		t.Fatalf("mid-sync checkpoint: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	_ = bob

	re, err := OpenSystem(dir, DurableOptions{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if err := re.Sync(); err != nil {
		t.Fatalf("post-recovery sync: %v", err)
	}
	bob2, _ := re.Principal("bob")
	if got := queryStrings(t, bob2, "m(X)"); !equalStrings(got, want) {
		t.Errorf("recovered+resynced m = %v, want %v", got, want)
	}
}

// TestCheckpointConcurrentWithMutations guards against lock-order
// deadlock: Checkpoint captures system and workspace state while other
// goroutines create principals, establish keys, and commit flushes (all
// of which append to the log).
func TestCheckpointConcurrentWithMutations(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenSystem(dir, DurableOptions{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice, err := sys.AddPrincipal("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.AddPrincipal("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.TrustAll(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := sys.AddPrincipal(fmt.Sprintf("p%d", i)); err != nil {
				done <- err
				return
			}
			if err := alice.Say("bob", fmt.Sprintf("tick(t%d).", i)); err != nil {
				done <- err
				return
			}
			if err := sys.Sync(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 10; i++ {
			if err := sys.Checkpoint(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("deadlock: checkpoint and mutations did not finish")
		}
	}
	// Whatever interleaving happened, the directory must recover cleanly.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSystem(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after concurrent checkpoints: %v", err)
	}
	defer re.Close()
	bob2, _ := re.Principal("bob")
	if bob2 == nil || bob2.Count("tick") != 10 {
		n := -1
		if bob2 != nil {
			n = bob2.Count("tick")
		}
		t.Errorf("recovered ticks = %d, want 10", n)
	}
}
