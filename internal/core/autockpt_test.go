package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lbtrust/internal/workspace"
)

func snapCount(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".snap" {
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAutoCheckpointBytes proves a size threshold checkpoints without any
// caller intervention: the log is compacted into a snapshot and the
// system reopens from it.
func TestAutoCheckpointBytes(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenSystem(dir, DurableOptions{AutoCheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.AddPrincipal("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := p.Update(func(tx *workspace.Tx) error {
			return tx.Assert(fmt.Sprintf("bulk(%d, somepayloadtexttofillthelog)", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "size-triggered checkpoint", func() bool { return snapCount(t, dir) > 0 })
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenSystem(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopening after auto checkpoint: %v", err)
	}
	defer reopened.Close()
	p2, ok := reopened.Principal("alice")
	if !ok {
		t.Fatalf("alice lost")
	}
	if n := p2.Count("bulk"); n != 40 {
		t.Fatalf("recovered %d bulk facts, want 40", n)
	}
}

// TestAutoCheckpointInterval proves the time trigger: after the interval
// elapses with log growth, a checkpoint runs; an idle system is left
// alone.
func TestAutoCheckpointInterval(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenSystem(dir, DurableOptions{AutoCheckpointInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	p, err := sys.AddPrincipal("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Update(func(tx *workspace.Tx) error { return tx.Assert("seed(1)") }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "interval-triggered checkpoint", func() bool { return snapCount(t, dir) > 0 })

	// Idle: no further log growth, so the snapshot generation must stop
	// advancing once the (empty) tail is compacted.
	var gen int
	waitFor(t, "quiescent generation", func() bool {
		entries, _ := os.ReadDir(dir)
		gen = len(entries)
		time.Sleep(450 * time.Millisecond)
		entries, _ = os.ReadDir(dir)
		return len(entries) == gen
	})
}
