package core

import (
	"fmt"
	"sort"
	"sync"

	"lbtrust/internal/datalog"
	"lbtrust/internal/dist"
	"lbtrust/internal/lbcrypto"
	"lbtrust/internal/obs"
	"lbtrust/internal/store"
	"lbtrust/internal/workspace"
)

// System is a set of LBTrust principals wired to a distribution runtime.
// Each principal owns a workspace (its Binder-style context) and a key
// store holding its private material plus peers' public material. By
// default all principals share one in-memory node, matching the paper's
// single-host evaluation; AddNode places principals on further (possibly
// TCP-connected) nodes.
type System struct {
	mu         sync.Mutex
	runtime    *dist.Runtime
	transport  dist.Transport
	defaultNd  *dist.Node
	principals map[string]*Principal
	order      []string
	// durable is non-nil for systems opened with OpenSystem: the store
	// that logs flushes, distribution events, and key material.
	durable *durableState
	// obs is the observability bundle attached via SetObs, remembered so
	// principals added later inherit it.
	obs *obs.Obs
}

// Principal is one LBTrust context: a workspace plus cryptographic
// identity.
type Principal struct {
	name   string
	sys    *System
	ws     *workspace.Workspace
	keys   *lbcrypto.KeyStore
	scheme Scheme

	schemeRules []datalog.Code // current exp1/exp1b, for reconfiguration
}

// NewSystem creates a system with a single in-memory node.
func NewSystem() *System {
	s, err := NewSystemWith(dist.NewMemNetwork())
	if err != nil {
		// The in-memory transport cannot fail to create an endpoint.
		panic("core: in-memory system: " + err.Error())
	}
	return s
}

// NewSystemWith creates a system over the given transport. Principals
// land on the default node "local" (created lazily on first use, so
// systems that place every principal explicitly never bind its endpoint)
// unless placed elsewhere with AddNode/AddPrincipalOn; with a TCP
// transport even the default node's traffic crosses real sockets.
func NewSystemWith(t dist.Transport) (*System, error) {
	s := &System{
		runtime:    dist.NewRuntime(),
		transport:  t,
		principals: map[string]*Principal{},
	}
	// Export shipments arrive in the receiver's import relation (exp2
	// reads import), keeping outbound derivation acyclic with inbound
	// consumption.
	s.runtime.SetDeliveryMap("export", "import")
	return s, nil
}

// defaultNode lazily creates the "local" node.
func (s *System) defaultNode() (*dist.Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.defaultNd != nil {
		return s.defaultNd, nil
	}
	ep, err := s.transport.Endpoint("local")
	if err != nil {
		return nil, fmt.Errorf("core: default node: %w", err)
	}
	s.defaultNd = s.runtime.AddNode("local", ep)
	s.logNode("local")
	return s.defaultNd, nil
}

// logNode records node creation for durable systems.
func (s *System) logNode(name string) {
	if s.durable != nil {
		s.durable.note(s.durable.st.Append(&store.Record{Kind: store.KindNode, Fields: []string{name}}))
	}
}

// Runtime exposes the distribution runtime.
func (s *System) Runtime() *dist.Runtime { return s.runtime }

// Transport exposes the wire layer the system was built on.
func (s *System) Transport() dist.Transport { return s.transport }

// Stats snapshots the distribution runtime's delivery and wire counters.
func (s *System) Stats() dist.Stats { return s.runtime.Stats() }

// Close flushes and closes the write-ahead log (for durable systems) and
// shuts down the transport (listeners, connections). The system remains
// queryable locally afterwards; only distribution and logging stop.
func (s *System) Close() error {
	var err error
	if s.durable != nil {
		s.durable.stopAutoCheckpoint()
		err = s.durable.sticky()
		if cerr := s.durable.st.Close(); err == nil {
			err = cerr
		}
	}
	if terr := s.transport.Close(); err == nil {
		err = terr
	}
	return err
}

// AddNode registers an additional node on the system's transport;
// principals can be placed on it via AddPrincipalOn.
func (s *System) AddNode(name string) (*dist.Node, error) {
	ep, err := s.transport.Endpoint(name)
	if err != nil {
		return nil, fmt.Errorf("core: node %s: %w", name, err)
	}
	n := s.runtime.AddNode(name, ep)
	s.logNode(name)
	return n, nil
}

// AddPrincipal creates a principal on the default node with the plaintext
// scheme.
func (s *System) AddPrincipal(name string) (*Principal, error) {
	nd, err := s.defaultNode()
	if err != nil {
		return nil, err
	}
	return s.AddPrincipalOn(name, nd)
}

// AddPrincipalOn creates a principal hosted on the given node. The base
// program (says/export/import) is installed and prin facts are exchanged
// with all existing principals.
func (s *System) AddPrincipalOn(name string, node *dist.Node) (*Principal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.principals[name]; ok {
		return nil, fmt.Errorf("core: principal %s already exists", name)
	}
	p := &Principal{
		name:   name,
		sys:    s,
		ws:     workspace.New(name),
		keys:   lbcrypto.NewKeyStore(),
		scheme: SchemePlaintext,
	}
	lbcrypto.Register(p.ws.Builtins(), p.keys)
	if s.durable != nil {
		// The prin record precedes the base-program flushes the journal is
		// about to log, so replay can route them to the right workspace.
		if err := s.durable.st.Append(&store.Record{Kind: store.KindPrin, Fields: []string{name, node.Name()}}); err != nil {
			return nil, fmt.Errorf("core: logging principal %s: %w", name, err)
		}
		d := s.durable
		p.ws.SetJournal(func(j *workspace.FlushJournal) {
			d.note(d.st.LogFlushNoWait(name, j))
		})
		p.ws.SetJournalSync(func() { d.note(d.st.WaitDurable()) })
	}
	if err := p.ws.LoadProgram(BaseProgram); err != nil {
		return nil, fmt.Errorf("core: base program: %w", err)
	}
	if err := p.installScheme(SchemePlaintext); err != nil {
		return nil, err
	}
	// Exchange prin facts with every existing principal.
	names := append([]string{name}, s.order...)
	sort.Strings(names)
	if err := p.ws.Update(func(tx *workspace.Tx) error {
		for _, n := range names {
			if err := tx.Assert(fmt.Sprintf("prin(%s)", n)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, other := range s.principals {
		if err := other.ws.Update(func(tx *workspace.Tx) error {
			return tx.Assert(fmt.Sprintf("prin(%s)", name))
		}); err != nil {
			return nil, err
		}
	}
	s.principals[name] = p
	s.order = append(s.order, name)
	if s.obs != nil {
		p.ws.SetObs(s.obs)
	}
	node.AddPrincipal(p.ws)
	return p, nil
}

// Principal returns a principal by name.
func (s *System) Principal(name string) (*Principal, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.principals[name]
	return p, ok
}

// Principals returns all principal names in creation order.
func (s *System) Principals() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string{}, s.order...)
}

// EstablishRSA generates (or reuses) the principal's RSA identity and
// distributes the public key to every other principal: the rsapubkey facts
// and key material peers need to verify its signatures.
func (s *System) EstablishRSA(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.principals[name]
	if !ok {
		return fmt.Errorf("core: unknown principal %s", name)
	}
	if err := p.keys.GenerateRSA(name); err != nil {
		return err
	}
	key, _ := p.keys.RSAKey(name)
	if s.durable != nil {
		if der, ok := p.keys.ExportRSAPrivate(name); ok {
			s.durable.note(s.durable.st.Append(store.EncodeKey(store.KeyRecord{Kind: "rsa-priv", Name: name, Data: der})))
		}
	}
	if err := p.ws.Update(func(tx *workspace.Tx) error {
		if err := tx.Assert(fmt.Sprintf("rsaprivkey(me, %s)", lbcrypto.PrivHandle(name))); err != nil {
			return err
		}
		return tx.Assert(fmt.Sprintf("rsapubkey(%s, %s)", name, lbcrypto.PubHandle(name)))
	}); err != nil {
		return err
	}
	for _, other := range s.principals {
		if other == p {
			continue
		}
		other.keys.ImportRSAPublic(name, &key.PublicKey)
		if err := other.ws.Update(func(tx *workspace.Tx) error {
			return tx.Assert(fmt.Sprintf("rsapubkey(%s, %s)", name, lbcrypto.PubHandle(name)))
		}); err != nil {
			return err
		}
	}
	return nil
}

// EstablishSharedSecret creates a symmetric secret between two principals
// and records the sharedsecret facts on both sides (the HMAC scheme's key
// distribution, Section 4.1.2).
func (s *System) EstablishSharedSecret(a, b string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pa, ok := s.principals[a]
	if !ok {
		return fmt.Errorf("core: unknown principal %s", a)
	}
	pb, ok := s.principals[b]
	if !ok {
		return fmt.Errorf("core: unknown principal %s", b)
	}
	if err := pa.keys.GenerateShared(a, b); err != nil {
		return err
	}
	secret, _ := pa.keys.Shared(a, b)
	pb.keys.SetShared(a, b, secret)
	if s.durable != nil {
		s.durable.note(s.durable.st.Append(store.EncodeKey(store.KeyRecord{Kind: "shared", Name: lbcrypto.PairOf(a, b), Data: secret})))
	}
	handle := lbcrypto.SharedHandle(a, b)
	for _, pair := range [][2]*Principal{{pa, pb}, {pb, pa}} {
		self, peer := pair[0], pair[1]
		if err := self.ws.Update(func(tx *workspace.Tx) error {
			return tx.Assert(fmt.Sprintf("sharedsecret(me, %s, %s)", peer.name, handle))
		}); err != nil {
			return err
		}
	}
	return nil
}

// Sync pumps the distribution runtime until no more tuples move (multi-hop
// protocols need one round per hop).
func (s *System) Sync() error { return s.runtime.Sync(1000) }

// ---- principal methods -----------------------------------------------------

// Name returns the principal's name.
func (p *Principal) Name() string { return p.name }

// Workspace exposes the underlying workspace.
func (p *Principal) Workspace() *workspace.Workspace { return p.ws }

// Keys exposes the principal's key store.
func (p *Principal) Keys() *lbcrypto.KeyStore { return p.keys }

// Scheme returns the current authentication scheme.
func (p *Principal) Scheme() Scheme { return p.scheme }

// TrustAll installs the paper's says1 rule: every rule said to this
// principal becomes active. Appropriate for benign environments; selective
// alternatives are speaks-for and delegation.
func (p *Principal) TrustAll() error { return p.ws.LoadProgram(TrustAllProgram) }

// ForgetCommunication retracts all received export and asserted says base
// facts, clearing the communication history. Used when reconfiguring the
// authentication scheme on a receiver: history signed under the old scheme
// no longer verifies; the sender's swapped signer re-signs and re-ships it.
func (p *Principal) ForgetCommunication() error {
	// Collect outside the transaction: the workspace lock is held inside.
	history := map[string][]datalog.Tuple{}
	for _, pred := range []string{"export", "import", "says", "saysOut"} {
		history[pred] = p.ws.BaseFacts(pred)
	}
	if err := p.ws.Update(func(tx *workspace.Tx) error {
		for pred, tuples := range history {
			for _, t := range tuples {
				if err := tx.RetractTuple(pred, t); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Let the runtime re-ship history addressed to this principal even when
	// the re-signed tuples are byte-identical (same scheme or deterministic
	// signatures).
	p.sys.runtime.ResetDeliveries(p.name)
	return nil
}

// UseScheme reconfigures the authentication scheme by swapping the signer
// rule (exp1) and verifier constraint (exp3) — the two-clause change the
// paper highlights in Section 4.1.2. Policies using says are untouched.
func (p *Principal) UseScheme(sc Scheme) error {
	if _, ok := schemes[sc]; !ok {
		return fmt.Errorf("core: unknown scheme %q", sc)
	}
	if sc == p.scheme {
		return nil
	}
	if err := p.ws.Update(func(tx *workspace.Tx) error {
		for _, code := range p.schemeRules {
			if err := tx.RemoveRule(code); err != nil {
				return err
			}
		}
		tx.RemoveConstraint("exp3")
		if err := p.installSchemeTx(tx, sc); err != nil {
			return err
		}
		return nil
	}); err != nil {
		return err
	}
	p.logScheme()
	return nil
}

func (p *Principal) installScheme(sc Scheme) error {
	if err := p.ws.Update(func(tx *workspace.Tx) error { return p.installSchemeTx(tx, sc) }); err != nil {
		return err
	}
	p.logScheme()
	return nil
}

// logScheme records the principal's current scheme for durable systems,
// so recovery can restore the swap-out bookkeeping UseScheme needs.
func (p *Principal) logScheme() {
	s := p.sys
	if s.durable != nil {
		s.durable.note(s.durable.st.Append(&store.Record{Kind: store.KindScheme, Fields: []string{p.name, string(p.scheme)}}))
	}
}

func (p *Principal) installSchemeTx(tx *workspace.Tx, sc Scheme) error {
	def := schemes[sc]
	p.schemeRules = nil
	for _, src := range []string{def.signer, def.signerOut} {
		signer, err := datalog.ParseClause(src)
		if err != nil {
			return fmt.Errorf("core: scheme %s signer: %w", sc, err)
		}
		if err := tx.AddRule(signer); err != nil {
			return err
		}
		// Track the installed signers' codes for later removal. The code
		// value is me-specialized inside the workspace, so recompute it
		// the same way.
		p.schemeRules = append(p.schemeRules, workspace.SpecializeCode(signer, datalog.Sym(p.name)))
	}
	if err := tx.AddConstraintSrc(def.verifier); err != nil {
		return err
	}
	p.scheme = sc
	return nil
}

// LoadProgram installs an LBTrust program into the principal's context.
func (p *Principal) LoadProgram(src string) error { return p.ws.LoadProgram(src) }

// Say asserts says(me, to, [| clause |]): the principal states a rule or
// fact to another principal. The active scheme signs and exports it on the
// next Sync.
func (p *Principal) Say(to string, clause string) error {
	_, err := p.SayTraced(to, clause, "")
	return err
}

// SayTraced is Say under a request trace ID: the flush's rollback log line
// (if any) carries the trace, and the returned stats report the gas the
// flush spent (Gas -1 when the workspace runs unmetered). The serving
// layer uses it for slow-request attribution.
func (p *Principal) SayTraced(to, clause, trace string) (workspace.EvalStats, error) {
	r, err := datalog.ParseClause(clause)
	if err != nil {
		return workspace.EvalStats{Gas: -1, Derived: -1}, err
	}
	return p.ws.UpdateTraced(trace, func(tx *workspace.Tx) error {
		return tx.AssertAtom(&datalog.Atom{
			Pred: "says",
			Args: []datalog.Term{
				datalog.Const{Val: datalog.Me},
				datalog.Const{Val: datalog.Sym(to)},
				datalog.Quote{Pat: r},
			},
		})
	})
}

// SayAll asserts many clauses to the same destination in one transaction,
// which the Figure 2 benchmark uses to batch message workloads.
func (p *Principal) SayAll(to string, clauses []string) error {
	rules := make([]*datalog.Rule, len(clauses))
	for i, c := range clauses {
		r, err := datalog.ParseClause(c)
		if err != nil {
			return err
		}
		rules[i] = r
	}
	return p.ws.Update(func(tx *workspace.Tx) error {
		for _, r := range rules {
			if err := tx.AssertAtom(&datalog.Atom{
				Pred: "says",
				Args: []datalog.Term{
					datalog.Const{Val: datalog.Me},
					datalog.Const{Val: datalog.Sym(to)},
					datalog.Quote{Pat: r},
				},
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// Query evaluates an atom pattern in the principal's context.
func (p *Principal) Query(src string) ([]datalog.Tuple, error) { return p.ws.Query(src) }

// Count returns the number of tuples of a predicate.
func (p *Principal) Count(pred string) int { return p.ws.Count(pred) }

// Update opens a transaction on the principal's workspace.
func (p *Principal) Update(fn func(tx *workspace.Tx) error) error { return p.ws.Update(fn) }
