// Durability wiring: OpenSystem builds a System whose every workspace
// flush, placement, delivery, and key establishment is recorded in an
// internal/store write-ahead log, and which — when the directory already
// holds state — rebuilds itself from the latest snapshot plus log replay
// before accepting new work. Replay is load-mode end to end: logged
// deltas are inserted directly, signatures are not re-verified and rules
// are not re-run (except after logged retractions, whose deltas are void
// by construction), so recovery cost tracks the size of the state, not
// the cost of recomputing it.
package core

import (
	"fmt"
	"sync"
	"time"

	"lbtrust/internal/datalog"
	"lbtrust/internal/dist"
	"lbtrust/internal/lbcrypto"
	"lbtrust/internal/store"
	"lbtrust/internal/workspace"
)

// DurableOptions configures OpenSystem.
type DurableOptions struct {
	// Transport is the wire layer (default: in-memory).
	Transport dist.Transport
	// Fsync is the log sync policy (default store.FsyncInterval).
	Fsync store.FsyncPolicy
	// FsyncInterval is the timer for the interval policy (default 50ms).
	FsyncInterval time.Duration
	// AutoCheckpointBytes, when positive, checkpoints automatically once
	// the active log segment reaches this many bytes, so an unattended
	// server never replays an ever-growing log on restart.
	AutoCheckpointBytes int64
	// AutoCheckpointInterval, when positive, checkpoints automatically
	// whenever this much time has passed since the last checkpoint and the
	// log has grown in between (an idle system is never checkpointed).
	// Bytes and interval triggers compose; either alone suffices.
	AutoCheckpointInterval time.Duration
}

// durableState is the store side of a System, kept in its own struct so
// the non-durable constructors pay nothing.
type durableState struct {
	st  *store.Store
	mu  sync.Mutex
	err error // sticky background log error, surfaced on Checkpoint/Close

	// Auto-checkpoint trigger goroutine lifecycle (nil channels when the
	// trigger is not configured).
	stopAuto chan struct{}
	autoDone chan struct{}
}

func (d *durableState) note(err error) {
	if err == nil {
		return
	}
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

func (d *durableState) sticky() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// OpenSystem opens (creating if needed) a durable system rooted at dir.
// On a fresh directory it returns an empty system whose state will
// survive restarts; on an existing one it first rebuilds the system from
// the newest snapshot and the write-ahead log, restoring workspaces
// byte-identically (queries answer exactly as before the crash) and the
// distribution runtime's shipped set (the next Sync re-delivers nothing
// already applied, and ships anything that was asserted but never
// shipped). Close the system to flush and release the log.
func OpenSystem(dir string, opts DurableOptions) (*System, error) {
	tr := opts.Transport
	if tr == nil {
		tr = dist.NewMemNetwork()
	}
	st, recovered, err := store.Open(dir, store.Options{Fsync: opts.Fsync, FsyncInterval: opts.FsyncInterval})
	if err != nil {
		return nil, err
	}
	sys, err := NewSystemWith(tr)
	if err != nil {
		st.Close()
		return nil, err
	}
	if err := sys.replay(recovered); err != nil {
		st.Close()
		sys.Close()
		return nil, fmt.Errorf("core: recovering %s: %w", dir, err)
	}
	// Wire journaling only now: events replayed from the log must not be
	// re-logged.
	sys.durable = &durableState{st: st}
	for _, name := range sys.order {
		p := sys.principals[name]
		pname := name
		p.ws.SetJournal(func(j *workspace.FlushJournal) {
			sys.durable.note(st.LogFlushNoWait(pname, j))
		})
		p.ws.SetJournalSync(func() { sys.durable.note(st.WaitDurable()) })
	}
	sys.runtime.SetJournal(sys.logDistEvent)
	if opts.AutoCheckpointBytes > 0 || opts.AutoCheckpointInterval > 0 {
		sys.durable.startAutoCheckpoint(sys, opts.AutoCheckpointBytes, opts.AutoCheckpointInterval)
	}
	return sys, nil
}

// autoCheckpointPoll is how often the trigger goroutine re-reads the log
// size. Polling a counter is cheap; the actual checkpoint work only runs
// when a threshold trips.
const autoCheckpointPoll = 100 * time.Millisecond

// startAutoCheckpoint launches the background trigger: checkpoint when
// the active log segment exceeds maxBytes (if positive), or when interval
// has elapsed since the last checkpoint with the log non-empty (if
// positive). Checkpoint errors are sticky, surfaced on the next explicit
// Checkpoint or Close like background log errors.
func (d *durableState) startAutoCheckpoint(sys *System, maxBytes int64, interval time.Duration) {
	d.stopAuto = make(chan struct{})
	d.autoDone = make(chan struct{})
	go func() {
		defer close(d.autoDone)
		ticker := time.NewTicker(autoCheckpointPoll)
		defer ticker.Stop()
		last := time.Now()
		var retryAt time.Time
		for {
			select {
			case <-d.stopAuto:
				return
			case <-ticker.C:
			}
			size := d.st.LogSize()
			due := maxBytes > 0 && size >= maxBytes
			due = due || (interval > 0 && size > 0 && time.Since(last) >= interval)
			if !due || time.Now().Before(retryAt) {
				continue
			}
			if err := d.st.Checkpoint(sys.captureSnapshot); err != nil {
				// A failed checkpoint (disk full, permissions) is retried on
				// a backoff, not once per poll tick (a bytes trigger stays
				// tripped) and not a whole interval later (the condition
				// may clear in seconds while the log keeps growing).
				d.note(err)
				retryAt = time.Now().Add(5 * time.Second)
				continue
			}
			retryAt = time.Time{}
			last = time.Now()
		}
	}()
}

// stopAutoCheckpoint stops the trigger goroutine and waits for any
// in-flight checkpoint to finish, so Close never races a capture.
func (d *durableState) stopAutoCheckpoint() {
	if d.stopAuto == nil {
		return
	}
	close(d.stopAuto)
	<-d.autoDone
	d.stopAuto = nil
}

// logDistEvent records one distribution runtime event in the log.
// Placements are not logged here — they ride on the prin records
// AddPrincipalOn writes (a bare place event from a manual
// Node.AddPrincipal has no durable principal to attach to).
func (s *System) logDistEvent(ev dist.Event) {
	if d := s.durable; d != nil {
		d.note(d.st.LogDistEvent(ev))
	}
}

// replay rebuilds system state from a recovery result: snapshot first,
// then the log records in order, then per-workspace finalization.
func (s *System) replay(rec *store.Recovered) error {
	if rec.Snapshot != nil {
		if err := s.restoreSnapshot(rec.Snapshot); err != nil {
			return err
		}
	}
	for _, r := range rec.Records {
		if err := s.applyRecord(r, rec.Decoder); err != nil {
			return err
		}
	}
	for _, name := range s.order {
		if err := s.principals[name].ws.FinishRestore(); err != nil {
			return fmt.Errorf("finishing %s: %w", name, err)
		}
	}
	return nil
}

// restoreNode recreates a node by name, routing "local" through the
// default-node path so later AddPrincipal calls reuse it.
func (s *System) restoreNode(name string) (*dist.Node, error) {
	if name == "local" {
		return s.defaultNode()
	}
	if n, ok := s.runtime.Node(name); ok {
		return n, nil
	}
	return s.AddNode(name)
}

// restorePrincipal recreates a principal shell — workspace, key store,
// built-ins — without loading any program: replay supplies the state.
func (s *System) restorePrincipal(name, nodeName string) (*Principal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.principals[name]; ok {
		return p, nil // idempotent replay across snapshot + log
	}
	node, err := s.restoreNodeLocked(nodeName)
	if err != nil {
		return nil, err
	}
	p := &Principal{
		name:   name,
		sys:    s,
		ws:     workspace.New(name),
		keys:   lbcrypto.NewKeyStore(),
		scheme: SchemePlaintext,
	}
	lbcrypto.Register(p.ws.Builtins(), p.keys)
	s.principals[name] = p
	s.order = append(s.order, name)
	node.AddPrincipal(p.ws)
	return p, nil
}

// restoreNodeLocked is restoreNode for callers already holding s.mu.
func (s *System) restoreNodeLocked(name string) (*dist.Node, error) {
	if name == "local" {
		if s.defaultNd != nil {
			return s.defaultNd, nil
		}
		ep, err := s.transport.Endpoint("local")
		if err != nil {
			return nil, err
		}
		s.defaultNd = s.runtime.AddNode("local", ep)
		return s.defaultNd, nil
	}
	if n, ok := s.runtime.Node(name); ok {
		return n, nil
	}
	ep, err := s.transport.Endpoint(name)
	if err != nil {
		return nil, err
	}
	return s.runtime.AddNode(name, ep), nil
}

// adoptScheme restores a principal's scheme bookkeeping (the field and
// the signer codes UseScheme swaps out) without touching the workspace —
// the scheme's rules and constraint were replayed with everything else.
func (p *Principal) adoptScheme(sc Scheme) error {
	def, ok := schemes[sc]
	if !ok {
		return fmt.Errorf("core: unknown scheme %q in log", sc)
	}
	p.schemeRules = nil
	for _, src := range []string{def.signer, def.signerOut} {
		r, err := datalog.ParseClause(src)
		if err != nil {
			return fmt.Errorf("core: scheme %s signer: %w", sc, err)
		}
		p.schemeRules = append(p.schemeRules, workspace.SpecializeCode(r, datalog.Sym(p.name)))
	}
	p.scheme = sc
	return nil
}

// importKey replays one key-material record: private RSA keys go to their
// owner with the public half distributed to every other principal (as
// EstablishRSA did originally), shared secrets to both ends of the pair.
func (s *System) importKey(k store.KeyRecord) error {
	switch k.Kind {
	case "rsa-priv":
		owner, ok := s.principals[k.Name]
		if !ok {
			return fmt.Errorf("core: key record for unknown principal %s", k.Name)
		}
		if err := owner.keys.ImportRSAPrivateDER(k.Name, k.Data); err != nil {
			return err
		}
		key, _ := owner.keys.RSAKey(k.Name)
		for _, other := range s.principals {
			if other != owner {
				other.keys.ImportRSAPublic(k.Name, &key.PublicKey)
			}
		}
		return nil
	case "shared":
		a, b, ok := lbcrypto.SplitPair(k.Name)
		if !ok {
			return fmt.Errorf("core: malformed shared-secret pair %q", k.Name)
		}
		for _, name := range []string{a, b} {
			if p, ok := s.principals[name]; ok {
				p.keys.ImportSharedPair(k.Name, k.Data)
			}
		}
		return nil
	}
	return fmt.Errorf("core: unknown key record kind %q", k.Kind)
}

// restoreSnapshot loads a full system image.
func (s *System) restoreSnapshot(snap *store.Snapshot) error {
	for _, n := range snap.System.Nodes {
		if _, err := s.restoreNode(n); err != nil {
			return err
		}
	}
	wsByName := map[string]*workspace.WorkspaceState{}
	for _, st := range snap.Workspaces {
		wsByName[st.Principal] = st
	}
	for _, ps := range snap.System.Principals {
		p, err := s.restorePrincipal(ps.Name, ps.Node)
		if err != nil {
			return err
		}
		if ps.Scheme != "" {
			if err := p.adoptScheme(Scheme(ps.Scheme)); err != nil {
				return err
			}
		}
		if st, ok := wsByName[ps.Name]; ok {
			if err := p.ws.RestoreState(st); err != nil {
				return err
			}
		}
	}
	for _, k := range snap.System.Keys {
		if err := s.importKey(k); err != nil {
			return err
		}
	}
	for _, m := range snap.System.DeliveryMaps {
		s.runtime.SetDeliveryMap(m[0], m[1])
	}
	ships := make([]dist.ShipState, len(snap.System.Ships))
	for i, sh := range snap.System.Ships {
		ships[i] = dist.ShipState{Key: sh.Key, Sender: sh.Sender, Target: sh.Target, Gen: sh.Gen}
	}
	s.runtime.RestoreShipped(snap.System.Gen, ships)
	return nil
}

// applyRecord replays one WAL record.
func (s *System) applyRecord(r *store.Record, dec *datalog.Decoder) error {
	switch r.Kind {
	case store.KindNode:
		if len(r.Fields) < 1 {
			return fmt.Errorf("core: node record missing name")
		}
		_, err := s.restoreNode(r.Fields[0])
		return err
	case store.KindPrin:
		if len(r.Fields) < 2 {
			return fmt.Errorf("core: prin record missing fields")
		}
		_, err := s.restorePrincipal(r.Fields[0], r.Fields[1])
		return err
	case store.KindScheme:
		if len(r.Fields) < 2 {
			return fmt.Errorf("core: scheme record missing fields")
		}
		p, ok := s.principals[r.Fields[0]]
		if !ok {
			return fmt.Errorf("core: scheme record for unknown principal %s", r.Fields[0])
		}
		return p.adoptScheme(Scheme(r.Fields[1]))
	case store.KindKey:
		k, err := store.DecodeKey(r)
		if err != nil {
			return err
		}
		return s.importKey(k)
	case store.KindMap:
		if len(r.Fields) < 2 {
			return fmt.Errorf("core: map record missing fields")
		}
		s.runtime.SetDeliveryMap(r.Fields[0], r.Fields[1])
		return nil
	case store.KindReset:
		if len(r.Fields) < 1 {
			return fmt.Errorf("core: reset record missing target")
		}
		s.runtime.ResetDeliveries(r.Fields[0])
		return nil
	case store.KindShip:
		recs, err := store.DecodeShips(r)
		if err != nil {
			return err
		}
		ships := make([]dist.ShipState, len(recs))
		var maxGen uint64
		for i, sh := range recs {
			ships[i] = dist.ShipState{Key: sh.Key, Sender: sh.Sender, Target: sh.Target, Gen: sh.Gen}
			if sh.Gen > maxGen {
				maxGen = sh.Gen
			}
		}
		s.runtime.RestoreShipped(maxGen, ships)
		return nil
	case store.KindFlush:
		principal, j, err := store.DecodeFlushWith(r, dec)
		if err != nil {
			return err
		}
		p, ok := s.principals[principal]
		if !ok {
			return fmt.Errorf("core: flush record for unknown principal %s", principal)
		}
		return p.ws.ApplyJournal(j)
	}
	return fmt.Errorf("core: unknown log record kind %q", r.Kind)
}

// captureSnapshot builds a full system image. The runtime's shipped set
// is captured before the workspaces: if a delivery commits in between,
// the snapshot holds the receiver's tuple without its ship record, and
// recovery merely re-ships it (receivers apply deliveries idempotently);
// the opposite order could record a shipment whose delivery was never
// captured — a lost tuple.
func (s *System) captureSnapshot() (*store.Snapshot, error) {
	rt := s.runtime.CaptureState()
	s.mu.Lock()
	names := append([]string{}, s.order...)
	principals := make([]*Principal, len(names))
	nodeOf := map[string]string{}
	for i, n := range names {
		principals[i] = s.principals[n]
		// Placement is resolved under s.mu, not from the runtime capture
		// above: AddPrincipalOn holds s.mu from the prin log record
		// through placement, so this pairing is consistent, while the
		// earlier runtime snapshot could predate a concurrent principal's
		// placement and record it with no node.
		if nd, ok := s.runtime.Placement(n); ok {
			nodeOf[n] = nd.Name()
		} else {
			nodeOf[n] = "local"
		}
	}
	s.mu.Unlock()

	snap := &store.Snapshot{}
	snap.System.Nodes = s.runtime.Nodes()
	for _, m := range rt.DeliveryMaps {
		snap.System.DeliveryMaps = append(snap.System.DeliveryMaps, m)
	}
	for _, sh := range rt.Ships {
		snap.System.Ships = append(snap.System.Ships, store.ShipRecord{Key: sh.Key, Sender: sh.Sender, Target: sh.Target, Gen: sh.Gen})
	}
	snap.System.Gen = rt.Gen
	sharedSeen := map[string]bool{}
	for i, p := range principals {
		snap.System.Principals = append(snap.System.Principals, store.PrincipalState{
			Name:   names[i],
			Node:   nodeOf[names[i]],
			Scheme: string(p.scheme),
		})
		if der, ok := p.keys.ExportRSAPrivate(p.name); ok {
			snap.System.Keys = append(snap.System.Keys, store.KeyRecord{Kind: "rsa-priv", Name: p.name, Data: der})
		}
		for pair, secret := range p.keys.ExportShared() {
			if sharedSeen[pair] {
				continue
			}
			sharedSeen[pair] = true
			snap.System.Keys = append(snap.System.Keys, store.KeyRecord{Kind: "shared", Name: pair, Data: secret})
		}
		snap.Workspaces = append(snap.Workspaces, p.ws.CaptureState())
	}
	return snap, nil
}

// Checkpoint writes a compacting snapshot of the whole system and rotates
// the write-ahead log, bounding recovery time and disk use. It returns
// any background log error accumulated since the last call.
func (s *System) Checkpoint() error {
	if s.durable == nil {
		return fmt.Errorf("core: system has no store (use OpenSystem)")
	}
	if err := s.durable.sticky(); err != nil {
		return fmt.Errorf("core: write-ahead log error: %w", err)
	}
	return s.durable.st.Checkpoint(s.captureSnapshot)
}

// DataDir returns the store directory, or "" for non-durable systems.
func (s *System) DataDir() string {
	if s.durable == nil {
		return ""
	}
	return s.durable.st.Dir()
}
