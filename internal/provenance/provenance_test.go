package provenance

import (
	"strings"
	"testing"

	"lbtrust/internal/datalog"
)

func tup(vals ...datalog.Value) datalog.Tuple { return datalog.NewTuple(vals...) }

func sym(s string) datalog.Value { return datalog.Sym(s) }

func mkRule(t *testing.T, src string) *datalog.Rule {
	t.Helper()
	r, err := datalog.ParseClause(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r
}

func TestRecordAndExplain(t *testing.T) {
	s := NewStore(0)
	r := mkRule(t, "tc: path(X, Z) <- edge(X, Y), path(Y, Z).")
	prem := []datalog.Premise{
		{Pred: "edge", Tuple: tup(sym("a"), sym("b"))},
		{Pred: "path", Tuple: tup(sym("b"), sym("c"))},
	}
	s.Record("path", tup(sym("a"), sym("c")), r, prem)

	p := s.Explain("path", tup(sym("a"), sym("c")))
	if p == nil || p.Rule == nil || p.Rule.Label != "tc" {
		t.Fatalf("expected a derived proof via rule tc, got %+v", p)
	}
	if len(p.Premises) != 2 {
		t.Fatalf("expected 2 premises, got %d", len(p.Premises))
	}
	for _, prem := range p.Premises {
		if !prem.Base {
			t.Errorf("premise %s%s should be a base leaf", prem.Pred, prem.Tuple.String())
		}
	}
	if r := p.Render(); !strings.Contains(r, "[rule tc]") || !strings.Contains(r, "[base fact]") {
		t.Errorf("render missing rule label or base leaf:\n%s", r)
	}
}

func TestRecordDedups(t *testing.T) {
	s := NewStore(0)
	r := mkRule(t, "tc: path(X, Z) <- edge(X, Y), path(Y, Z).")
	prem := []datalog.Premise{{Pred: "edge", Tuple: tup(sym("a"), sym("b"))}}
	head := tup(sym("a"), sym("b"))
	// Fixpoint iteration re-fires OnDerive with the same instantiation.
	s.Record("path", head, r, prem)
	_, used1, _, _ := s.Stats()
	s.Record("path", head, r, prem)
	_, used2, _, _ := s.Stats()
	if used1 != used2 {
		t.Fatalf("duplicate recording changed accounting: %d != %d", used1, used2)
	}
	if ds := s.Derivations("path", head); len(ds) != 1 {
		t.Fatalf("expected 1 deduped derivation, got %d", len(ds))
	}
}

func TestMemCapDropsAndMarksTruncated(t *testing.T) {
	s := NewStore(1) // everything over budget
	r := mkRule(t, "tc: path(X, Z) <- edge(X, Y), path(Y, Z).")
	head := tup(sym("a"), sym("c"))
	s.Record("path", head, r, []datalog.Premise{{Pred: "edge", Tuple: tup(sym("a"), sym("b"))}})
	if _, _, _, dropped := s.Stats(); dropped != 1 {
		t.Fatalf("expected 1 dropped derivation, got %d", dropped)
	}
	p := s.Explain("path", head)
	if !p.Truncated {
		t.Fatalf("proof of a dropped derivation should be marked truncated: %+v", p)
	}
}

func TestRemoteLeafSurvivesReset(t *testing.T) {
	s := NewStore(0)
	r := mkRule(t, "tc: path(X, Z) <- edge(X, Y), path(Y, Z).")
	remote := tup(sym("alice"), sym("bob"))
	s.RecordRemote("export", remote, Remote{Node: "n1", Sender: "alice", Trace: "deadbeefcafef00d"})
	s.Record("path", tup(sym("a"), sym("c")), r, []datalog.Premise{{Pred: "edge", Tuple: tup(sym("a"), sym("b"))}})

	// Second delivery never overwrites the first origin.
	s.RecordRemote("export", remote, Remote{Node: "n2", Sender: "mallory"})
	if origin, ok := s.RemoteOrigin("export", remote); !ok || origin.Node != "n1" {
		t.Fatalf("first delivery should win, got %+v ok=%v", origin, ok)
	}

	s.ResetDerivations()
	if ds := s.Derivations("path", tup(sym("a"), sym("c"))); len(ds) != 0 {
		t.Fatalf("derivations should be gone after reset, got %d", len(ds))
	}
	origin, ok := s.RemoteOrigin("export", remote)
	if !ok || origin.Sender != "alice" || origin.Trace != "deadbeefcafef00d" {
		t.Fatalf("remote leaf should survive reset, got %+v ok=%v", origin, ok)
	}
	p := s.Explain("export", remote)
	if p.Remote == nil || p.Remote.Node != "n1" {
		t.Fatalf("explain should answer the remote origin, got %+v", p)
	}
	if r := p.Render(); !strings.Contains(r, "from node n1") || !strings.Contains(r, "trace deadbeefcafef00d") {
		t.Errorf("render missing origin details:\n%s", r)
	}
}

func TestCycleGuard(t *testing.T) {
	s := NewStore(0)
	r := mkRule(t, "loop: p(X) <- p(X).")
	head := tup(sym("a"))
	s.Record("p", head, r, []datalog.Premise{{Pred: "p", Tuple: head}})
	p := s.Explain("p", head)
	if p.Rule == nil || len(p.Premises) != 1 || !p.Premises[0].Cycle {
		t.Fatalf("recursive derivation should bottom out in a cycle leaf, got %+v", p)
	}
	if r := p.Render(); !strings.Contains(r, "(seen above)") {
		t.Errorf("render missing cycle marker:\n%s", r)
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	r := mkRule(t, "tc: p(X) <- q(X).")
	head := tup(sym("a"))
	s.Record("p", head, r, nil)
	s.RecordRemote("p", head, Remote{})
	s.ResetDerivations()
	if s.Explain("p", head) != nil {
		t.Fatal("nil store should explain nothing")
	}
	if ds := s.Derivations("p", head); ds != nil {
		t.Fatal("nil store should hold nothing")
	}
	if _, ok := s.RemoteOrigin("p", head); ok {
		t.Fatal("nil store should have no origins")
	}
	if facts, used, limit, dropped := s.Stats(); facts != 0 || used != 0 || limit != 0 || dropped != 0 {
		t.Fatal("nil store stats should be zero")
	}
}

func TestSortProofsDeterministic(t *testing.T) {
	ps := []*Proof{
		{Pred: "b", Tuple: tup(sym("x"))},
		{Pred: "a", Tuple: tup(sym("y"))},
		{Pred: "a", Tuple: tup(sym("x"))},
	}
	SortProofs(ps)
	if ps[0].Pred != "a" || ps[0].Tuple.At(0) != sym("x") || ps[2].Pred != "b" {
		t.Fatalf("unexpected order: %v %v %v", ps[0], ps[1], ps[2])
	}
}
