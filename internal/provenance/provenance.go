// Package provenance captures why derived tuples exist: a bounded,
// per-workspace derivation DAG mapping each derived tuple to the rule and
// premise tuples that produced it, plus remote-origin leaves for tuples
// that arrived over dist Sync. The store is fed by the evaluator's
// OnDerive hook (every successful body instantiation, pre-dedup), so
// attaching it to a workspace after load and re-running evaluation
// re-captures the complete DAG — which is also how provenance survives
// retraction-driven rebuilds and crash recovery: entries are never
// journaled, they are re-derived.
//
// A nil *Store is the disabled configuration; every method is a no-op on
// it, so instrumented sites pay one branch (the PR 9 obs convention).
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"lbtrust/internal/datalog"
)

// DefaultMemBytes caps a workspace's derivation DAG when the caller does
// not choose a budget. The unit is datalog.TupleCost bytes (the storage
// engine's ~64+16·arity model), so the knob composes with the evaluator's
// memory limits.
const DefaultMemBytes = 16 << 20

// Derivation is one recorded proof step: the rule that fired and the body
// facts it consumed, in the evaluator's join-plan order.
type Derivation struct {
	// Rule is the single-head compiled source rule. It is shared with the
	// workspace's loaded rule set, so a Derivation costs pointers, not a
	// rule copy.
	Rule *datalog.Rule
	// Premises are the positive body facts this instantiation matched.
	Premises []datalog.Premise
}

// Remote is leaf provenance for a tuple that arrived from another node
// via dist Sync: which node exported it, which principal said it, and the
// envelope trace ID it rode in on — enough to resume the proof on the
// origin node.
type Remote struct {
	Node   string // origin node (Envelope.From)
	Sender string // exporting principal (Envelope.Sender)
	Trace  string // envelope trace ID, "" when the Sync was untraced
}

// Proof is an explanation tree for one tuple. Interior nodes carry the
// rule and its premise subtrees; leaves are base facts (Base), remote
// deliveries (Remote non-nil), already-expanded tuples on the same path
// (Cycle — recursive rules), or tuples whose derivation was dropped by
// the memory cap (Truncated).
type Proof struct {
	Pred      string
	Tuple     datalog.Tuple
	Rule      *datalog.Rule // nil at leaves
	Premises  []*Proof      // nil at leaves
	Base      bool          // no recorded derivation: asserted base fact
	Remote    *Remote       // non-nil: delivered by Sync from another node
	Cycle     bool          // tuple already expanded on this path
	Truncated bool          // derivation existed but was dropped by the cap

	// Activation is the proof of the active(R) credential that activated
	// this step's rule, when the rule was installed through the active
	// table (a says-activated quoted rule) rather than loaded statically.
	// It is what lets a proof of a fact derived by a said rule descend
	// through the says chain to the credential that authorized the rule —
	// down to the remote Sync leaf when the credential crossed nodes. The
	// store cannot fill it (activation is workspace state); the workspace
	// attaches it after Explain.
	Activation *Proof
}

// Store is one workspace's bounded derivation DAG. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Store struct {
	mu      sync.Mutex
	derivs  map[string][]Derivation
	remotes map[string]Remote
	// seen holds the full fact+derivation keys already recorded, so the
	// hot path (OnDerive fires pre-dedup on every fixpoint revisit)
	// dedups with one map probe instead of re-keying stored entries.
	seen map[string]struct{}
	// ruleStr memoizes Rule.String() by pointer: rules are shared with
	// the loaded rule set, and formatting one per OnDerive call would
	// dominate capture cost.
	ruleStr   map[*datalog.Rule]string
	limit     int64 // cap on memUsed, in TupleCost bytes
	memUsed   int64
	remoteMem int64 // portion of memUsed held by remote leaves
	dropped   int64 // derivations discarded because the cap was hit
}

// NewStore returns an empty store capped at limitBytes of TupleCost
// accounting (<= 0 selects DefaultMemBytes).
func NewStore(limitBytes int64) *Store {
	if limitBytes <= 0 {
		limitBytes = DefaultMemBytes
	}
	return &Store{
		derivs:  map[string][]Derivation{},
		remotes: map[string]Remote{},
		seen:    map[string]struct{}{},
		ruleStr: map[*datalog.Rule]string{},
		limit:   limitBytes,
	}
}

func key(pred string, t datalog.Tuple) string { return pred + "\x00" + t.Key() }

// derivationKey canonically identifies one derivation of a fact, for
// dedup: OnDerive fires on every instantiation, and fixpoint iteration
// revisits the same (rule, premises) many times.
func derivationKey(r *datalog.Rule, premises []datalog.Premise) string {
	k := r.Label + "\x00" + r.String()
	for _, p := range premises {
		k += "\x00" + p.Pred + "\x01" + p.Tuple.Key()
	}
	return k
}

// Record stores one derivation step. Its signature matches
// datalog.TraceFunc so it can be attached directly to Evaluator.OnDerive.
func (s *Store) Record(pred string, t datalog.Tuple, r *datalog.Rule, premises []datalog.Premise) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.ruleStr[r]
	if !ok {
		rs = r.Label + "\x00" + r.String()
		s.ruleStr[r] = rs
	}
	var b strings.Builder
	b.Grow(len(pred) + len(rs) + 64)
	b.WriteString(pred)
	b.WriteByte(0)
	b.WriteString(t.Key())
	b.WriteByte(2)
	b.WriteString(rs)
	for _, p := range premises {
		b.WriteByte(0)
		b.WriteString(p.Pred)
		b.WriteByte(1)
		b.WriteString(p.Tuple.Key())
	}
	full := b.String()
	if _, ok := s.seen[full]; ok {
		return
	}
	cost := datalog.TupleCost(t)
	for _, p := range premises {
		cost += datalog.TupleCost(p.Tuple)
	}
	if s.memUsed+cost > s.limit {
		s.dropped++
		return
	}
	s.seen[full] = struct{}{}
	s.memUsed += cost
	// Copy the premise slice: the evaluator reuses its backing array
	// across instantiations.
	ps := make([]datalog.Premise, len(premises))
	copy(ps, premises)
	k := key(pred, t)
	s.derivs[k] = append(s.derivs[k], Derivation{Rule: r, Premises: ps})
}

// RecordRemote stores leaf provenance for a tuple delivered by Sync.
// Remote leaves survive ResetDerivations: a delivery happens once and
// cannot be re-captured by re-running evaluation.
func (s *Store) RecordRemote(pred string, t datalog.Tuple, origin Remote) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(pred, t)
	if _, ok := s.remotes[k]; ok {
		return // first delivery wins: that is where the tuple came from
	}
	s.remotes[k] = origin
	s.memUsed += datalog.TupleCost(t)
	s.remoteMem += datalog.TupleCost(t)
}

// ResetDerivations drops every recorded derivation (but keeps remote
// leaves) so a retraction-driven rebuild can re-capture the DAG from the
// full re-evaluation that follows. Dropped-by-cap counters reset too: the
// new fixpoint starts from a clean budget.
func (s *Store) ResetDerivations() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.derivs = map[string][]Derivation{}
	s.seen = map[string]struct{}{}
	s.dropped = 0
	// Remote leaves stay accounted: they survive the reset.
	s.memUsed = s.remoteMem
}

// Derivations returns the recorded derivations of one tuple (nil when
// none — a base fact or a dropped entry).
func (s *Store) Derivations(pred string, t datalog.Tuple) []Derivation {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := s.derivs[key(pred, t)]
	out := make([]Derivation, len(ds))
	copy(out, ds)
	return out
}

// RemoteOrigin returns the recorded Sync origin of a tuple, if any.
func (s *Store) RemoteOrigin(pred string, t datalog.Tuple) (Remote, bool) {
	if s == nil {
		return Remote{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.remotes[key(pred, t)]
	return r, ok
}

// Stats reports the store's accounting: recorded facts, bytes used
// against the cap, and derivations dropped because the cap was hit.
func (s *Store) Stats() (facts int, memUsed, limit, dropped int64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.derivs), s.memUsed, s.limit, s.dropped
}

// Explain builds the proof tree for one tuple. The tree is deterministic:
// when a fact has several recorded derivations the lexicographically
// smallest (by rule text, then premise keys) is chosen, and premise
// subtrees appear in recorded order. Sharing in the DAG is unfolded into
// a tree, with Cycle leaves guarding recursive rules and Truncated leaves
// marking facts whose derivation the memory cap dropped.
func (s *Store) Explain(pred string, t datalog.Tuple) *Proof {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.explainLocked(pred, t, map[string]bool{})
}

func (s *Store) explainLocked(pred string, t datalog.Tuple, path map[string]bool) *Proof {
	k := key(pred, t)
	p := &Proof{Pred: pred, Tuple: t}
	if r, ok := s.remotes[k]; ok {
		rc := r
		p.Remote = &rc
		return p
	}
	if path[k] {
		p.Cycle = true
		return p
	}
	ds := s.derivs[k]
	if len(ds) == 0 {
		if s.dropped > 0 {
			// The cap dropped derivations somewhere; this leaf may be a
			// base fact or a casualty — without the entry we cannot tell,
			// so mark honestly when anything was dropped and the fact is
			// not obviously base. Callers that know the base relations can
			// refine; the wire shape keeps both bits.
			p.Truncated = true
		}
		p.Base = true
		return p
	}
	best := 0
	if len(ds) > 1 {
		keys := make([]string, len(ds))
		for i, d := range ds {
			keys[i] = derivationKey(d.Rule, d.Premises)
		}
		best = 0
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[best] {
				best = i
			}
		}
	}
	d := ds[best]
	p.Rule = d.Rule
	path[k] = true
	for _, prem := range d.Premises {
		p.Premises = append(p.Premises, s.explainLocked(prem.Pred, prem.Tuple, path))
	}
	delete(path, k)
	return p
}

// Render returns the proof as an indented plain-text tree, one fact per
// line with its justification: the rule label for derived facts,
// "[base fact]" for asserted leaves, the origin node and trace for
// remote leaves, and markers for cycles and cap-truncated entries.
func (p *Proof) Render() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

func (p *Proof) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(p.Pred)
	b.WriteString(p.Tuple.String())
	switch {
	case p.Remote != nil:
		fmt.Fprintf(b, "  [from node %s, said by %s", p.Remote.Node, p.Remote.Sender)
		if p.Remote.Trace != "" {
			fmt.Fprintf(b, ", trace %s", p.Remote.Trace)
		}
		b.WriteString("]\n")
	case p.Cycle:
		b.WriteString("  (seen above)\n")
	case p.Rule != nil:
		label := p.Rule.Label
		if label == "" {
			label = p.Rule.String()
		}
		fmt.Fprintf(b, "  [rule %s]\n", label)
		for _, prem := range p.Premises {
			prem.render(b, depth+1)
		}
		if p.Activation != nil {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString("activated by:\n")
			p.Activation.render(b, depth+2)
		}
	case p.Truncated:
		b.WriteString("  [base fact or dropped by provenance cap]\n")
	default:
		b.WriteString("  [base fact]\n")
	}
}

// SortProofs orders sibling proofs deterministically by predicate then
// tuple key — the stable framing the wire encoding relies on.
func SortProofs(ps []*Proof) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Pred != ps[j].Pred {
			return ps[i].Pred < ps[j].Pred
		}
		return ps[i].Tuple.Key() < ps[j].Tuple.Key()
	})
}
