package meta

import (
	"fmt"
	"sync/atomic"

	"lbtrust/internal/datalog"
)

// freshCounter makes translation-introduced variables globally unique, so
// that separately translated literal lists (for example a constraint's LHS
// and RHS) can be combined into one rule body without capture.
var freshCounter atomic.Int64

// TranslatePatterns rewrites every quoted-code pattern in the rule body
// into a conjunction of meta-model literals, exactly as Section 3.3 of the
// paper describes: the pattern
//
//	owner(U, [| A <- P(T2*), A*. |]) -> access(U,P,read)
//
// becomes
//
//	owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P) -> ...
//
// Quoted code in head positions is left untouched (it is a template,
// instantiated by the engine). Quote-equality literals R = [| ... |] anchor
// the pattern at R. The returned rule is a rewritten clone.
func TranslatePatterns(r *datalog.Rule) (*datalog.Rule, error) {
	out := r.Clone()
	fresh := func(prefix string) datalog.Var {
		return datalog.Var(fmt.Sprintf("MV_%s%d", prefix, freshCounter.Add(1)))
	}

	var newBody []datalog.Literal
	for _, lit := range out.Body {
		// R = [| pattern |] anchors the pattern at the variable.
		if lit.Atom.Pred == "=" && len(lit.Atom.Args) == 2 && !lit.Negated {
			v, q, ok := eqVarQuote(lit.Atom.Args)
			if ok {
				lits, err := patternLits(v, q.Pat, fresh)
				if err != nil {
					return nil, err
				}
				newBody = append(newBody, lits...)
				continue
			}
		}
		hasQuote := false
		for _, t := range lit.Atom.AllArgs() {
			if _, ok := t.(datalog.Quote); ok {
				hasQuote = true
				break
			}
		}
		if !hasQuote {
			newBody = append(newBody, lit)
			continue
		}
		if lit.Negated {
			return nil, fmt.Errorf("quoted-code pattern under negation in %s is not supported", lit.Atom.String())
		}
		a := lit.Atom
		var extra []datalog.Literal
		replace := func(t datalog.Term) (datalog.Term, error) {
			q, ok := t.(datalog.Quote)
			if !ok {
				return t, nil
			}
			rv := fresh("R")
			lits, err := patternLits(rv, q.Pat, fresh)
			if err != nil {
				return nil, err
			}
			extra = append(extra, lits...)
			return rv, nil
		}
		if a.Part != nil {
			p, err := replace(a.Part)
			if err != nil {
				return nil, err
			}
			a.Part = p
		}
		args := make([]datalog.Term, len(a.Args))
		for i, t := range a.Args {
			nt, err := replace(t)
			if err != nil {
				return nil, err
			}
			args[i] = nt
		}
		a.Args = args
		newBody = append(newBody, datalog.Literal{Atom: a})
		newBody = append(newBody, extra...)
	}
	out.Body = newBody
	return out, nil
}

func eqVarQuote(args []datalog.Term) (datalog.Var, datalog.Quote, bool) {
	if v, ok := args[0].(datalog.Var); ok {
		if q, ok := args[1].(datalog.Quote); ok {
			return v, q, true
		}
	}
	if v, ok := args[1].(datalog.Var); ok {
		if q, ok := args[0].(datalog.Quote); ok {
			return v, q, true
		}
	}
	return "", datalog.Quote{}, false
}

// patternLits builds the meta-model conjunction matching a quoted pattern
// anchored at ruleVar. Matching is existential, mirroring the paper's
// translation: listed pattern atoms must be embeddable in the rule;
// Kleene-starred metavariables (A*, T*) contribute no constraints.
func patternLits(ruleVar datalog.Var, pat *datalog.Rule, fresh func(string) datalog.Var) ([]datalog.Literal, error) {
	if pat.Agg != nil {
		return nil, fmt.Errorf("aggregation inside quoted-code pattern is not supported")
	}
	lits := []datalog.Literal{
		pos(PredRule, datalog.Term(ruleVar)),
	}
	for i := range pat.Heads {
		hl, err := atomPatternLits(ruleVar, PredHead, &pat.Heads[i], fresh)
		if err != nil {
			return nil, err
		}
		lits = append(lits, hl...)
	}
	for i := range pat.Body {
		bl, err := atomPatternLits(ruleVar, PredBody, &pat.Body[i].Atom, fresh)
		if err != nil {
			return nil, err
		}
		lits = append(lits, bl...)
		if pat.Body[i].Negated && len(bl) > 0 {
			// The atom entity variable is the second argument of the first
			// emitted literal (head/body fact).
			ae := bl[0].Atom.Args[1]
			lits = append(lits, pos(PredNegated, ae))
		}
	}
	return lits, nil
}

func atomPatternLits(ruleVar datalog.Var, slot string, a *datalog.Atom, fresh func(string) datalog.Var) ([]datalog.Literal, error) {
	// Starred atom metavariable (A*): the rest of the clause, no
	// constraints.
	if a.AtomVar != "" && a.Star {
		return nil, nil
	}
	var atomTerm datalog.Term
	if a.AtomVar != "" {
		atomTerm = datalog.Var(a.AtomVar)
	} else {
		atomTerm = fresh("A")
	}
	lits := []datalog.Literal{pos(slot, datalog.Term(ruleVar), atomTerm)}
	if a.AtomVar != "" && a.Pred == "" && a.PredVar == "" {
		// Bare metavariable: matches any atom in the slot.
		return lits, nil
	}
	switch {
	case a.PredVar != "":
		lits = append(lits, pos(PredFunctor, atomTerm, datalog.Var(a.PredVar)))
	case a.Pred != "":
		lits = append(lits, pos(PredFunctor, atomTerm, datalog.Const{Val: datalog.Sym(a.Pred)}))
	}
	pos0 := 1
	if a.Part != nil {
		tl, err := argPatternLits(atomTerm, 0, a.Part, fresh)
		if err != nil {
			return nil, err
		}
		lits = append(lits, tl...)
	}
	for _, t := range a.Args {
		if _, ok := t.(datalog.StarVar); ok {
			break // T*: remaining arguments unconstrained
		}
		tl, err := argPatternLits(atomTerm, pos0, t, fresh)
		if err != nil {
			return nil, err
		}
		lits = append(lits, tl...)
		pos0++
	}
	return lits, nil
}

func argPatternLits(atomTerm datalog.Term, position int, t datalog.Term, fresh func(string) datalog.Var) ([]datalog.Literal, error) {
	te := fresh("T")
	argLit := pos(PredArg, atomTerm, datalog.Const{Val: datalog.Int(position)}, datalog.Term(te))
	switch t := t.(type) {
	case datalog.Var:
		if t.IsBlank() {
			// Any term at this position.
			return []datalog.Literal{argLit}, nil
		}
		// A pattern variable matches a constant and binds to its value,
		// following the paper's translation of bex1'.
		return []datalog.Literal{
			argLit,
			pos(PredConstant, datalog.Term(te)),
			pos(PredValue, datalog.Term(te), t),
		}, nil
	case datalog.Const:
		return []datalog.Literal{
			argLit,
			pos(PredConstant, datalog.Term(te)),
			pos(PredValue, datalog.Term(te), datalog.Term(t)),
		}, nil
	case datalog.Quote:
		// A nested quote matches a constant holding a code value with the
		// nested pattern's structure.
		rv := fresh("R")
		lits := []datalog.Literal{
			argLit,
			pos(PredConstant, datalog.Term(te)),
			pos(PredValue, datalog.Term(te), datalog.Term(rv)),
		}
		inner, err := patternLits(rv, t.Pat, fresh)
		if err != nil {
			return nil, err
		}
		return append(lits, inner...), nil
	}
	return nil, fmt.Errorf("unsupported term %s in quoted-code pattern", t.String())
}

// pos builds a positive literal.
func pos(pred string, args ...datalog.Term) datalog.Literal {
	return datalog.Literal{Atom: datalog.Atom{Pred: pred, Args: args}}
}

// HasPattern reports whether a rule's body contains quoted-code terms that
// TranslatePatterns would rewrite.
func HasPattern(r *datalog.Rule) bool {
	for _, lit := range r.Body {
		for _, t := range lit.Atom.AllArgs() {
			if _, ok := t.(datalog.Quote); ok {
				return true
			}
		}
	}
	return false
}
