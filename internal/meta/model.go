// Package meta implements LogicBlox-style meta-programming for LBTrust
// (Section 3.3 of the paper): the Figure 1 meta-model, reification of rules
// into meta-model facts, translation of quoted-code patterns into
// conjunctions of meta-model atoms, and support for code generation through
// the active table.
package meta

import (
	"fmt"

	"lbtrust/internal/datalog"
)

// Meta-model predicate names (Figure 1 of the paper), plus the active
// table described in Section 3.3.
const (
	PredRule      = "rule"
	PredHead      = "head"
	PredBody      = "body"
	PredAtom      = "atom"
	PredFunctor   = "functor"
	PredArg       = "arg"
	PredNegated   = "negated"
	PredTerm      = "term"
	PredVariable  = "variable"
	PredVName     = "vname"
	PredConstant  = "constant"
	PredValue     = "value"
	PredPredicate = "predicate"
	PredPName     = "pname"
	PredActive    = "active"
)

// ModelPredicates lists every meta-model predicate with its arity, matching
// Figure 1 of the paper (active is the workspace's active-rule table).
var ModelPredicates = map[string]int{
	PredRule:      1,
	PredHead:      2,
	PredBody:      2,
	PredAtom:      1,
	PredFunctor:   2,
	PredArg:       3,
	PredNegated:   1,
	PredTerm:      1,
	PredVariable:  1,
	PredVName:     2,
	PredConstant:  1,
	PredValue:     2,
	PredPredicate: 1,
	PredPName:     2,
	PredActive:    1,
}

// IsMetaPredicate reports whether name belongs to the meta-model.
func IsMetaPredicate(name string) bool {
	_, ok := ModelPredicates[name]
	return ok
}

// Schema is the Figure 1 meta-model expressed as LBTrust constraints, used
// for documentation and structural tests.
const Schema = `
rule(R) -> .
head(R,A) -> rule(R), atom(A).
body(R,A) -> rule(R), atom(A).
atom(A) -> .
functor(A,P) -> atom(A), predicate(P).
arg(A,I,T) -> atom(A), int(I), term(T).
negated(A) -> atom(A).
term(T) -> .
variable(X) -> term(X).
vname(X,N) -> variable(X), string(N).
constant(C) -> term(C).
value(C,V) -> constant(C), string(V).
predicate(P) -> .
pname(P,N) -> predicate(P), string(N).
`

// Fact is one meta-model fact produced by reification.
type Fact struct {
	Pred  string
	Tuple datalog.Tuple
}

// Model reifies Code values into meta-model facts over a database. Rule
// identity is the Code value itself; atoms and terms become fresh entities.
// The model remembers which code values it has already reified, so
// re-reification is a no-op.
type Model struct {
	db         *datalog.Database
	reified    map[string]bool
	nextEntity int64
}

// NewModel creates a meta-model manager over the database.
func NewModel(db *datalog.Database) *Model {
	return &Model{db: db, reified: map[string]bool{}}
}

// AdoptModel rebuilds a model's bookkeeping from a restored database: the
// reified set is exactly the codes recorded in the rule relation (Reify
// inserts a rule fact for every code, including nested ones), and the
// entity counter resumes past the largest entity id present anywhere, so
// later reifications cannot collide with restored entities.
func AdoptModel(db *datalog.Database) *Model {
	m := NewModel(db)
	if rel, ok := db.Get(PredRule); ok {
		rel.Each(func(t datalog.Tuple) bool {
			if c, ok := t.At(0).(datalog.Code); ok {
				m.reified[c.Key()] = true
			}
			return true
		})
	}
	for _, name := range db.Names() {
		rel, _ := db.Get(name)
		rel.Each(func(t datalog.Tuple) bool {
			for _, v := range t.Values() {
				if e, ok := v.(datalog.Entity); ok && e.ID > m.nextEntity {
					m.nextEntity = e.ID
				}
			}
			return true
		})
	}
	return m
}

func (m *Model) entity(sort string) datalog.Entity {
	m.nextEntity++
	return datalog.Entity{Sort: sort, ID: m.nextEntity}
}

// Reify inserts the meta-model representation of the code value, returning
// the facts that were newly added (empty if the value was already
// reified). Nested quoted code inside the rule is reified recursively, so
// patterns can descend through says-of-says structures.
func (m *Model) Reify(c datalog.Code) []Fact {
	if m.reified[c.Key()] {
		return nil
	}
	m.reified[c.Key()] = true
	var out []Fact
	add := func(pred string, tuple datalog.Tuple) {
		rel := m.db.Rel(pred, tuple.Len())
		if rel.Insert(tuple) {
			out = append(out, Fact{Pred: pred, Tuple: tuple})
		}
	}
	r := c.Rule()
	add(PredRule, datalog.NewTuple(c))
	for i := range r.Heads {
		a := m.reifyAtom(&r.Heads[i], &out, add)
		add(PredHead, datalog.NewTuple(c, a))
	}
	for i := range r.Body {
		a := m.reifyAtom(&r.Body[i].Atom, &out, add)
		add(PredBody, datalog.NewTuple(c, a))
		if r.Body[i].Negated {
			add(PredNegated, datalog.NewTuple(a))
		}
	}
	return out
}

// reifyAtom creates the atom entity and its functor/arg facts. Argument
// positions are 1-based; a partition argument, when present, occupies
// position 0.
func (m *Model) reifyAtom(a *datalog.Atom, out *[]Fact, add func(string, datalog.Tuple)) datalog.Entity {
	ae := m.entity("atom")
	add(PredAtom, datalog.NewTuple(ae))
	if a.Pred != "" {
		p := datalog.Sym(a.Pred)
		add(PredFunctor, datalog.NewTuple(ae, p))
		add(PredPredicate, datalog.NewTuple(p))
		add(PredPName, datalog.NewTuple(p, datalog.String(a.Pred)))
	}
	pos := 1
	if a.Part != nil {
		m.reifyArg(ae, 0, a.Part, add)
	}
	for _, t := range a.Args {
		m.reifyArg(ae, pos, t, add)
		pos++
	}
	return ae
}

func (m *Model) reifyArg(ae datalog.Entity, pos int, t datalog.Term, add func(string, datalog.Tuple)) {
	te := m.entity("term")
	add(PredArg, datalog.NewTuple(ae, datalog.Int(pos), te))
	add(PredTerm, datalog.NewTuple(te))
	switch t := t.(type) {
	case datalog.Var:
		add(PredVariable, datalog.NewTuple(te))
		add(PredVName, datalog.NewTuple(te, datalog.String(string(t))))
	case datalog.Const:
		add(PredConstant, datalog.NewTuple(te))
		add(PredValue, datalog.NewTuple(te, t.Val))
		if inner, ok := t.Val.(datalog.Code); ok {
			for _, f := range m.Reify(inner) {
				add(f.Pred, f.Tuple)
			}
		}
	case datalog.Quote:
		inner := datalog.NewCode(t.Pat)
		add(PredConstant, datalog.NewTuple(te))
		add(PredValue, datalog.NewTuple(te, inner))
		for _, f := range m.Reify(inner) {
			add(f.Pred, f.Tuple)
		}
	default:
		// Arithmetic, starred and partition terms reify as opaque terms:
		// they are neither variable nor constant in the meta-model.
	}
}

// ReifyDatabaseCodes scans the database for code values stored in tuples
// (for example, rules carried by says or export facts) and reifies any that
// are new. It returns the meta facts that were newly added (empty when
// nothing changed), so callers can fold them into flush deltas. The scan is
// incremental in effect because reified codes are remembered.
func (m *Model) ReifyDatabaseCodes() []Fact {
	var added []Fact
	for _, name := range m.db.Names() {
		if name == PredValue {
			continue // value's own code entries are handled during Reify
		}
		rel, _ := m.db.Get(name)
		var codes []datalog.Code
		rel.Each(func(t datalog.Tuple) bool {
			for _, v := range t.Values() {
				if c, ok := v.(datalog.Code); ok && !m.reified[c.Key()] {
					codes = append(codes, c)
				}
			}
			return true
		})
		for _, c := range codes {
			added = append(added, m.Reify(c)...)
		}
	}
	return added
}

// Reified reports whether the code value has been reified.
func (m *Model) Reified(c datalog.Code) bool { return m.reified[c.Key()] }

// ActiveCodes returns the code values currently present in the active
// table.
func (m *Model) ActiveCodes() []datalog.Code {
	rel, ok := m.db.Get(PredActive)
	if !ok {
		return nil
	}
	var out []datalog.Code
	rel.Each(func(t datalog.Tuple) bool {
		if c, ok := t.At(0).(datalog.Code); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Activate inserts a code value into the active table (and reifies it),
// returning whether it was new.
func (m *Model) Activate(c datalog.Code) bool {
	m.Reify(c)
	rel := m.db.Rel(PredActive, 1)
	return rel.Insert(datalog.NewTuple(c))
}

var _ = fmt.Sprintf
