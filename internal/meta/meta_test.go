package meta

import (
	"strings"
	"testing"

	"lbtrust/internal/datalog"
)

func TestMetaModelMatchesFigure1(t *testing.T) {
	prog, err := datalog.ParseProgram(Schema)
	if err != nil {
		t.Fatalf("Figure 1 schema does not parse: %v", err)
	}
	got := map[string]int{}
	for _, c := range prog.Constraints {
		for _, l := range c.LHS {
			got[l.Atom.Pred] = l.Atom.Arity()
		}
	}
	for name, arity := range ModelPredicates {
		if name == PredActive {
			continue // active is the workspace table, not part of Figure 1
		}
		if got[name] != arity {
			t.Errorf("meta-model predicate %s: schema arity %d, want %d", name, got[name], arity)
		}
	}
	if len(got) != len(ModelPredicates)-1 {
		t.Errorf("schema declares %d predicates, want %d", len(got), len(ModelPredicates)-1)
	}
}

func TestReifyRule(t *testing.T) {
	db := datalog.NewDatabase()
	m := NewModel(db)
	r := datalog.MustParseClause(`access(P,O,read) <- good(P), !bad(P).`)
	code := datalog.NewCode(r)
	facts := m.Reify(code)
	if len(facts) == 0 {
		t.Fatal("no facts produced")
	}
	count := func(pred string) int {
		rel, ok := db.Get(pred)
		if !ok {
			return 0
		}
		return rel.Len()
	}
	if count(PredRule) != 1 {
		t.Errorf("rule facts = %d, want 1", count(PredRule))
	}
	if count(PredHead) != 1 {
		t.Errorf("head facts = %d, want 1", count(PredHead))
	}
	if count(PredBody) != 2 {
		t.Errorf("body facts = %d, want 2", count(PredBody))
	}
	if count(PredNegated) != 1 {
		t.Errorf("negated facts = %d, want 1", count(PredNegated))
	}
	// access/3, good/1, bad/1 arguments: 3 + 1 + 1 terms.
	if count(PredArg) != 5 {
		t.Errorf("arg facts = %d, want 5", count(PredArg))
	}
	// P, O variables in head; P in each body atom; read constant.
	if count(PredVariable) != 4 {
		t.Errorf("variable facts = %d, want 4", count(PredVariable))
	}
	if count(PredConstant) != 1 {
		t.Errorf("constant facts = %d, want 1", count(PredConstant))
	}
	// Re-reification is a no-op.
	if again := m.Reify(code); len(again) != 0 {
		t.Errorf("re-reify produced %d facts, want 0", len(again))
	}
}

func TestReifyNestedCode(t *testing.T) {
	db := datalog.NewDatabase()
	m := NewModel(db)
	r := datalog.MustParseClause(`says(bob, alice, [| access(p, o, read). |]).`)
	m.Reify(datalog.NewCode(r))
	rel, _ := db.Get(PredRule)
	if rel.Len() != 2 {
		t.Errorf("rule facts = %d, want 2 (outer and nested)", rel.Len())
	}
}

func TestTranslatePaperSection33Example(t *testing.T) {
	// fail-style rule from the paper's translation example:
	// owner(U,R1), rule(R1), body(R1,A1), atom(A1), functor(A1,P) -> access(U,P,read).
	r := datalog.MustParseClause(`violation(U,P) <- owner(U, [| A <- P(T2*), A*. |]), !access(U,P,read).`)
	tr, err := TranslatePatterns(r)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	s := tr.String()
	for _, want := range []string{"owner(U,", "rule(", "body(", "functor(", "!access(U,P,read)"} {
		if !strings.Contains(s, want) {
			t.Errorf("translated rule %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "[|") {
		t.Errorf("translated rule still contains quoted code: %s", s)
	}
	// The head pattern A is unconstrained except via the head slot; the
	// pattern body atom P(T2*) contributes functor but no arg literals.
	if strings.Contains(s, "arg(") {
		t.Errorf("starred argument pattern should not constrain args: %s", s)
	}
}

func TestPatternMatchingEndToEnd(t *testing.T) {
	// bex1'-style rule: match a fact said by bob and extract its arguments.
	db := datalog.NewDatabase()
	m := NewModel(db)

	said := datalog.NewCode(datalog.MustParseClause(`access(p1, o1, read).`))
	db.Rel("says", 3).Insert(datalog.NewTuple(datalog.Sym("bob"), datalog.Sym("alice"), said))
	m.ReifyDatabaseCodes()

	rule := datalog.MustParseClause(`granted(P,O) <- says(bob, alice, [| access(P, O, read). |]).`)
	tr, err := TranslatePatterns(rule)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	ev := datalog.NewEvaluator(db, datalog.NewBuiltinSet())
	if err := ev.SetRules([]*datalog.Rule{tr}); err != nil {
		t.Fatalf("set rules: %v", err)
	}
	if err := ev.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	rel, ok := db.Get("granted")
	if !ok || rel.Len() != 1 {
		t.Fatalf("granted not derived")
	}
	want := datalog.NewTuple(datalog.Sym("p1"), datalog.Sym("o1"))
	if !rel.Contains(want) {
		t.Errorf("granted does not contain %v", want)
	}

	// A fact with a different mode must not match.
	other := datalog.NewCode(datalog.MustParseClause(`access(p2, o2, write).`))
	db.Rel("says", 3).Insert(datalog.NewTuple(datalog.Sym("bob"), datalog.Sym("alice"), other))
	m.ReifyDatabaseCodes()
	if err := ev.Run(); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rel.Len() != 1 {
		t.Errorf("granted = %d rows, want 1 (write fact must not match read pattern)", rel.Len())
	}
}

func TestPatternRestOfBodyStar(t *testing.T) {
	// mayRead-style: [| A <- P(T*), A*. |] matches rules with bodies, not facts.
	db := datalog.NewDatabase()
	m := NewModel(db)

	withBody := datalog.NewCode(datalog.MustParseClause(`q(X) <- secret(X), other(X).`))
	fact := datalog.NewCode(datalog.MustParseClause(`q(a).`))
	db.Rel("owner", 2).Insert(datalog.NewTuple(datalog.Sym("u1"), withBody))
	db.Rel("owner", 2).Insert(datalog.NewTuple(datalog.Sym("u2"), fact))
	m.ReifyDatabaseCodes()

	rule := datalog.MustParseClause(`reads(U,P) <- owner(U, [| A <- P(T*), A*. |]).`)
	tr, err := TranslatePatterns(rule)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	ev := datalog.NewEvaluator(db, datalog.NewBuiltinSet())
	if err := ev.SetRules([]*datalog.Rule{tr}); err != nil {
		t.Fatalf("set rules: %v", err)
	}
	if err := ev.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	rel, _ := db.Get("reads")
	if rel == nil || rel.Len() != 2 {
		t.Fatalf("reads should bind each body predicate of u1's rule, got %v", rel)
	}
	for _, want := range []datalog.Tuple{
		datalog.NewTuple(datalog.Sym("u1"), datalog.Sym("secret")),
		datalog.NewTuple(datalog.Sym("u1"), datalog.Sym("other")),
	} {
		if !rel.Contains(want) {
			t.Errorf("reads missing %v", want)
		}
	}
}

func TestEqualityAnchoredPattern(t *testing.T) {
	// del1-generated form: active(R) <- says(U,me,R), R = [| p(T*) <- A*. |].
	db := datalog.NewDatabase()
	m := NewModel(db)

	pRule := datalog.NewCode(datalog.MustParseClause(`p(a).`))
	qRule := datalog.NewCode(datalog.MustParseClause(`q(a).`))
	db.Rel("said", 1).Insert(datalog.NewTuple(pRule))
	db.Rel("said", 1).Insert(datalog.NewTuple(qRule))
	m.ReifyDatabaseCodes()

	rule := datalog.MustParseClause(`accept(R) <- said(R), R = [| p(T*) <- A*. |].`)
	tr, err := TranslatePatterns(rule)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	ev := datalog.NewEvaluator(db, datalog.NewBuiltinSet())
	if err := ev.SetRules([]*datalog.Rule{tr}); err != nil {
		t.Fatalf("set rules: %v", err)
	}
	if err := ev.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	rel, _ := db.Get("accept")
	if rel == nil || rel.Len() != 1 {
		t.Fatalf("accept = %v, want exactly the p rule", rel)
	}
	if !rel.Contains(datalog.NewTuple(pRule)) {
		t.Error("accept should contain the p rule")
	}
}

func TestActiveTable(t *testing.T) {
	db := datalog.NewDatabase()
	m := NewModel(db)
	c := datalog.NewCode(datalog.MustParseClause(`p(X) <- q(X).`))
	if !m.Activate(c) {
		t.Fatal("first activation should be new")
	}
	if m.Activate(c) {
		t.Fatal("second activation should not be new")
	}
	codes := m.ActiveCodes()
	if len(codes) != 1 || codes[0].Key() != c.Key() {
		t.Errorf("ActiveCodes = %v", codes)
	}
	if !m.Reified(c) {
		t.Error("activation should reify")
	}
}
