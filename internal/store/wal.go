package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when the write-ahead log is forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) flushes and syncs the log on a timer
	// (Options.FsyncInterval): a crash can lose at most the last interval
	// of flushes, and the flush hot path never waits on the disk — not
	// even for a write syscall, since records buffer in the appender
	// until the next sync point.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs before an append returns. Concurrent appends are
	// group-committed: the log writer batches everything queued and pays
	// one write + one fsync for the batch.
	FsyncAlways
	// FsyncOff never calls fsync; records are still handed to the OS on
	// the interval timer, so a process crash loses at most the last
	// interval, but power loss can lose anything not yet written back.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return "unknown"
}

// ParseFsyncPolicy parses "always", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or off)", s)
}

// Log framing: every record is [u32 length][u32 CRC32(payload)][payload],
// little-endian. The frame is what makes torn tails detectable: a record
// whose length header, payload, or checksum is cut off or corrupted ends
// the valid prefix, and recovery truncates the file there.
const frameHeaderSize = 8

// maxRecordSize bounds a single record so a corrupted length header
// cannot make the scanner attempt a multi-gigabyte allocation.
const maxRecordSize = 1 << 30

func appendFrame(dst []byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrames scans framed records from r, stopping cleanly at the first
// torn or corrupt frame. It returns the record payloads, the byte length
// of the valid prefix, and whether a torn tail was dropped.
func readFrames(r io.Reader) (payloads [][]byte, valid int64, truncated bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return payloads, valid, false, nil
			}
			return payloads, valid, true, nil // short header: torn tail
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordSize {
			return payloads, valid, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return payloads, valid, true, nil // short payload: torn tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, valid, true, nil // bit rot or torn overwrite
		}
		payloads = append(payloads, payload)
		valid += frameHeaderSize + int64(n)
	}
}

// walAppender is the append side of one log segment. Non-waiting appends
// (the FsyncInterval / FsyncOff hot path) only append the framed record
// to an in-memory buffer under a mutex — no syscall, no goroutine wakeup
// — and the commit goroutine drains the buffer to the file at each sync
// point: the interval tick, a durability-demanding append (FsyncAlways),
// or a barrier. Waiters are group-committed: everything buffered up to
// the commit rides the same write and fsync.
type walAppender struct {
	f        *os.File
	bw       *bufio.Writer
	policy   FsyncPolicy
	interval time.Duration

	mu    sync.Mutex
	buf   []byte // framed records not yet handed to the file
	spare []byte // recycled buffer, swapped in by commits
	size  int64  // segment bytes: recovered prefix + framed appends
	err   error  // sticky write/sync error

	commitC chan chan error
	kickC   chan struct{} // oversized-buffer nudge, no ack
	closeC  chan struct{}
	done    chan struct{}

	// m is the owning store's metrics slot (shared across rotations, so
	// SetObs reaches every appender); nil for standalone appenders.
	m *atomic.Pointer[Metrics]
}

// walBufCap hands an oversized pending buffer to the file inline (still
// no fsync), bounding memory between ticks under bursts.
const walBufCap = 4 << 20

func newWALAppender(f *os.File, policy FsyncPolicy, interval time.Duration, m *atomic.Pointer[Metrics]) *walAppender {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if m == nil {
		m = new(atomic.Pointer[Metrics])
	}
	w := &walAppender{
		m:        m,
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<18),
		policy:   policy,
		interval: interval,
		commitC:  make(chan chan error, 64),
		kickC:    make(chan struct{}, 1),
		closeC:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

func (w *walAppender) setErrLocked(err error) {
	if err != nil && w.err == nil {
		w.err = err
	}
}

// Err returns the sticky write error, if any.
func (w *walAppender) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// commit swaps the pending buffer out under the lock, then writes,
// flushes, and — unless the policy is FsyncOff — syncs outside it, so
// appenders never block behind the disk. Only the commit goroutine calls
// it (the bufio writer and file are confined to that goroutine).
func (w *walAppender) commit() error {
	w.mu.Lock()
	buf := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	w.mu.Unlock()

	m := w.m.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var err error
	if len(buf) > 0 {
		_, err = w.bw.Write(buf)
	}
	if ferr := w.bw.Flush(); err == nil {
		err = ferr
	}
	if w.policy != FsyncOff {
		var syncStart time.Time
		if m != nil {
			syncStart = time.Now()
		}
		if serr := w.f.Sync(); err == nil {
			err = serr
		}
		if m != nil {
			m.walFsyncSecs.Observe(time.Since(syncStart))
		}
	}
	if m != nil {
		m.walCommits.Inc()
		m.walCommitSecs.Observe(time.Since(start))
	}
	w.mu.Lock()
	w.setErrLocked(err)
	if w.spare == nil {
		w.spare = buf[:0] // recycle for the next swap
	}
	err = w.err
	w.mu.Unlock()
	return err
}

// run is the commit goroutine: it fires on the interval tick and on
// explicit commit requests, group-acknowledging every waiter that
// arrived while a commit was pending.
func (w *walAppender) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case ack := <-w.commitC:
			waiters := []chan error{ack}
		drain:
			for {
				select {
				case more := <-w.commitC:
					waiters = append(waiters, more)
				default:
					break drain
				}
			}
			err := w.commit()
			for _, c := range waiters {
				c <- err
			}
		case <-ticker.C:
			w.mu.Lock()
			dirty := len(w.buf) > 0
			w.mu.Unlock()
			if dirty || w.bw.Buffered() > 0 {
				w.commit()
			}
		case <-w.kickC:
			w.commit()
		case <-w.closeC:
			err := w.commit()
			// Serve any barrier that raced into the queue before exiting:
			// the commit above drained the whole buffer, so their records
			// are durable and they get the batch's error.
			for {
				select {
				case ack := <-w.commitC:
					ack <- err
				default:
					return
				}
			}
		}
	}
}

// Size returns the segment's byte length: the valid prefix recovered at
// open plus everything appended since (buffered or written). The
// auto-checkpoint trigger reads it to decide when the log is worth
// compacting.
func (w *walAppender) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// setSize records the recovered prefix length of a reopened segment.
func (w *walAppender) setSize(n int64) {
	w.mu.Lock()
	w.size = n
	w.mu.Unlock()
}

// Append queues one record. With FsyncAlways (or wait=true) it blocks
// until the record — and everything buffered with it — is on disk.
func (w *walAppender) Append(payload []byte, wait bool) error {
	err := w.enqueue(payload)
	if wait || w.policy == FsyncAlways {
		return w.Barrier()
	}
	return err
}

// AppendNoSync queues one record without ever waiting for durability,
// regardless of policy. Callers that must commit under a lock use it and
// run Barrier after releasing the lock, so concurrent appenders behind
// them share the batch's fsync instead of serializing on it.
func (w *walAppender) AppendNoSync(payload []byte) error { return w.enqueue(payload) }

func (w *walAppender) enqueue(payload []byte) error {
	if m := w.m.Load(); m != nil {
		m.walAppends.Inc()
		m.walAppendBytes.Add(frameHeaderSize + int64(len(payload)))
	}
	w.mu.Lock()
	w.buf = appendFrame(w.buf, payload)
	w.size += frameHeaderSize + int64(len(payload))
	kick := len(w.buf) > walBufCap
	err := w.err
	w.mu.Unlock()
	if kick {
		// Bound memory under bursts: nudge the commit goroutine without
		// waiting for it.
		select {
		case w.kickC <- struct{}{}:
		default:
		}
	}
	return err
}

// Barrier blocks until everything appended before it is written and
// synced (group commit: concurrent barriers share one fsync). A barrier
// racing the appender's Close never hangs: Close's final commit drains
// the whole buffer, so a late barrier's records are already durable and
// it returns the sticky error.
func (w *walAppender) Barrier() error {
	ack := make(chan error, 1)
	select {
	case w.commitC <- ack:
	case <-w.done:
		return w.Err()
	}
	select {
	case err := <-ack:
		return err
	case <-w.done:
		// The commit goroutine exited; its close path drained the queue
		// and the buffer before closing done.
		select {
		case err := <-ack:
			return err
		default:
			return w.Err()
		}
	}
}

// Close drains, flushes, syncs, and closes the segment file.
func (w *walAppender) Close() error {
	close(w.closeC)
	<-w.done
	err := w.Err()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
