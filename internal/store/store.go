// Package store is the durability subsystem: an append-only write-ahead
// log of workspace flushes and distribution events, periodic compacting
// snapshots of full system state, and a recovery path that rebuilds the
// state from the latest snapshot plus the log tail.
//
// The log subscribes (via internal/core's wiring) to each workspace's
// flush journal — the base-level changes plus the derived delta of every
// committed transaction — so replay can rebuild a workspace byte-
// identically without re-running evaluation or re-verifying signatures.
// Records are CRC-framed (length prefix + checksum); a torn or corrupted
// tail ends the valid prefix and recovery truncates it, so a crash mid-
// append loses at most the unsynced suffix and never corrupts earlier
// records. Appends are group-committed off the flush hot path: records
// buffer in memory (no syscall on the flush path) and a commit goroutine
// writes and syncs them at the policy's sync points — under FsyncAlways,
// one write and one fsync per batch of concurrent appenders.
//
// On disk a store directory holds one snapshot/log generation pair:
//
//	snap-<seq>.snap   full system image (absent before the first checkpoint)
//	wal-<seq>.log     flushes and events since that snapshot
//
// Checkpoint writes snap-<seq+1> from live state, rotates the log, and
// deletes the previous generation. Recovery loads the newest valid
// snapshot and replays its log.
package store

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lbtrust/internal/datalog"
	"lbtrust/internal/dist"
	"lbtrust/internal/workspace"
)

// Options configures a store.
type Options struct {
	// Fsync selects the log sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the timer for FsyncInterval (default 50ms).
	FsyncInterval time.Duration
}

// Store is an open durability directory: one active WAL segment plus the
// snapshot (and any earlier segments) it extends.
type Store struct {
	dir  string
	opts Options

	// ckptMu serializes checkpoints. It is never held together with mu
	// across a blocking operation, and capture callbacks run with NO
	// store lock held — callers' capture functions take system and
	// workspace locks, and flush paths holding those locks append to the
	// log, so holding the store lock across capture would deadlock.
	ckptMu sync.Mutex

	mu      sync.RWMutex
	seq     uint64
	wal     *walAppender
	tipSize int64 // recovered byte length of the tip segment at open
	closed  bool

	// Observability attachments (see SetObs in metrics.go). Atomic so
	// the commit goroutine and appenders read them without s.mu.
	obsM   atomic.Pointer[Metrics]
	obsLog atomic.Pointer[slog.Logger]
}

// Recovered is what Open found on disk: the newest valid snapshot (nil on
// a fresh directory) and the decoded WAL records that follow it, in log
// order. Truncated reports that a torn or corrupt log tail was dropped.
type Recovered struct {
	Snapshot  *Snapshot
	Records   []*Record
	Truncated bool
	// Decoder carries the code-parse memo shared by the snapshot decode;
	// pass it to DecodeFlushWith while replaying Records so every
	// occurrence of a rule's canonical text parses once per recovery.
	Decoder *datalog.Decoder
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", seq))
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

// Open opens (creating if needed) a store directory and returns the store
// together with whatever state it recovered. The caller replays
// Recovered into a fresh system before logging anything new.
//
// Log and snapshot files are created 0600 inside a 0700 directory: the
// write-ahead log carries the system's key material (RSA private keys,
// shared secrets) alongside its facts.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, opts: opts}
	rec := &Recovered{Decoder: datalog.NewDecoder()}

	// Newest parseable snapshot wins. A snapshot that exists but cannot
	// be read is an error, not an empty system: a corrupt newest snapshot
	// with no surviving older generation must not silently discard the
	// directory's state.
	seqs, err := generations(dir)
	if err != nil {
		return nil, nil, err
	}
	snapSeen := false
	var snapErr error
	snapSeq := uint64(0)
	for i := len(seqs) - 1; i >= 0; i-- {
		path := snapPath(dir, seqs[i])
		if _, err := os.Stat(path); err != nil {
			continue
		}
		snapSeen = true
		snap, err := readSnapshotFile(path, rec.Decoder)
		if err != nil {
			// Torn or corrupt: try the previous generation, if any.
			if snapErr == nil {
				snapErr = fmt.Errorf("store: snapshot %s unreadable: %w", path, err)
			}
			continue
		}
		rec.Snapshot = snap
		snapSeq = seqs[i]
		break
	}
	if snapSeen && rec.Snapshot == nil {
		return nil, nil, snapErr
	}

	// Replay every log segment at or after the snapshot, in order — an
	// interrupted checkpoint legitimately leaves wal-(N+1) next to
	// snap-N. Only the newest segment may carry a torn tail (older
	// segments were drained before rotation); it is truncated so new
	// appends follow the last valid record.
	var walSeqs []uint64
	for _, q := range seqs {
		if q < snapSeq {
			continue
		}
		if _, err := os.Stat(walPath(dir, q)); err == nil {
			walSeqs = append(walSeqs, q)
		}
	}
	if len(walSeqs) == 0 {
		walSeqs = []uint64{snapSeq}
	}
	s.seq = walSeqs[len(walSeqs)-1]
	var tip *os.File
	for i, q := range walSeqs {
		last := i == len(walSeqs)-1
		flags := os.O_RDONLY
		if last {
			flags = os.O_CREATE | os.O_RDWR
		}
		f, err := os.OpenFile(walPath(dir, q), flags, 0o600)
		if err != nil {
			return nil, nil, err
		}
		payloads, valid, truncated, err := readFrames(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if truncated && !last {
			f.Close()
			return nil, nil, fmt.Errorf("store: log segment %s has a torn middle (only the newest segment may be torn)", walPath(dir, q))
		}
		rec.Truncated = rec.Truncated || truncated
		for _, p := range payloads {
			r, err := parseRecord(p)
			if err != nil {
				// A record that framed correctly but no longer parses marks
				// the end of the usable prefix.
				rec.Truncated = true
				truncated = true
				break
			}
			rec.Records = append(rec.Records, r)
		}
		if !last {
			f.Close()
			continue
		}
		if truncated {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, nil, err
		}
		tip = f
		s.tipSize = valid
	}
	s.wal = newWALAppender(tip, opts.Fsync, opts.FsyncInterval, &s.obsM)
	s.wal.setSize(s.tipSize)
	return s, rec, nil
}

// generations lists the snapshot/log sequence numbers present, sorted.
func generations(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	set := map[uint64]bool{}
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.snap", &seq); n == 1 {
			set[seq] = true
		}
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &seq); n == 1 {
			set[seq] = true
		}
	}
	out := make([]uint64, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Seq returns the current snapshot/log generation number; Checkpoint
// increments it.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// LogSize returns the byte length of the active log segment (recovered
// prefix plus appends, buffered or written). It resets on Checkpoint's
// rotation; automatic checkpoint triggers poll it.
func (s *Store) LogSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0
	}
	return s.wal.Size()
}

// Policy returns the configured fsync policy.
func (s *Store) Policy() FsyncPolicy { return s.opts.Fsync }

// Append logs one record. Under FsyncAlways it returns after the record
// is durable (sharing the batch's fsync with concurrent appenders);
// otherwise it returns once the record is buffered, surfacing any sticky
// log-write error.
func (s *Store) Append(r *Record) error {
	return s.AppendPayload(r.encode())
}

// AppendPayload logs one pre-encoded record payload.
func (s *Store) AppendPayload(payload []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return fmt.Errorf("store: store is closed")
	}
	return s.wal.Append(payload, false)
}

// payloadPool recycles encode buffers: AppendPayload copies the payload
// into the log buffer, so the encode scratch can be reused immediately.
// Without this, per-flush encode garbage inflates GC mark work enough to
// show up as Sync latency at large database sizes.
var payloadPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// LogFlush logs one workspace flush journal, honoring the fsync policy
// (under FsyncAlways it returns only once durable).
func (s *Store) LogFlush(principal string, j *workspace.FlushJournal) error {
	return s.logFlush(principal, j, false)
}

// LogFlushNoWait enqueues one workspace flush journal without waiting
// for durability even under FsyncAlways. It exists for callers that log
// while holding locks readers contend on: enqueue under the lock (commit
// order), then make the transaction wait with WaitDurable after
// releasing it, so concurrent commits group into one fsync instead of
// serializing the workspace behind the disk.
func (s *Store) LogFlushNoWait(principal string, j *workspace.FlushJournal) error {
	return s.logFlush(principal, j, true)
}

func (s *Store) logFlush(principal string, j *workspace.FlushJournal, noWait bool) error {
	bp := payloadPool.Get().(*[]byte)
	buf := AppendFlushPayload((*bp)[:0], principal, j)
	var err error
	if noWait {
		s.mu.RLock()
		if s.closed {
			err = fmt.Errorf("store: store is closed")
		} else {
			err = s.wal.AppendNoSync(buf)
		}
		s.mu.RUnlock()
	} else {
		err = s.AppendPayload(buf)
	}
	*bp = buf[:0]
	payloadPool.Put(bp)
	return err
}

// WaitDurable blocks until everything enqueued so far is durable under
// the store's policy. It is a no-op unless the policy is FsyncAlways
// (interval and off policies never make commits wait). The fsync wait
// happens with NO store lock held — holding even the read lock across a
// disk sync would let a concurrent Checkpoint (a writer) queue behind it
// and stall every other commit's append. If the segment is rotated away
// while we wait, its Close drained and synced everything we appended, so
// the barrier degrades to collecting its sticky error.
func (s *Store) WaitDurable() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("store: store is closed")
	}
	wal := s.wal
	always := s.opts.Fsync == FsyncAlways
	s.mu.RUnlock()
	if !always {
		return nil
	}
	return wal.Barrier()
}

// LogDistEvent logs one distribution runtime event, mapping it to its
// record kind. Placements return nil without logging — they ride on the
// prin records written when principals are created. Core and the bench
// harness both use this, so the event→record mapping exists exactly
// once.
func (s *Store) LogDistEvent(ev dist.Event) error {
	switch ev.Kind {
	case dist.EventMap:
		return s.Append(&Record{Kind: KindMap, Fields: []string{ev.Src, ev.Dst}})
	case dist.EventReset:
		return s.Append(&Record{Kind: KindReset, Fields: []string{ev.Target}})
	case dist.EventShip:
		ships := make([]ShipRecord, len(ev.Ships))
		for i, sh := range ev.Ships {
			ships[i] = ShipRecord{Key: sh.Key, Sender: sh.Sender, Target: sh.Target, Gen: sh.Gen}
		}
		return s.LogShips(ships)
	}
	return nil
}

// LogShips logs shipped-set records.
func (s *Store) LogShips(ships []ShipRecord) error {
	bp := payloadPool.Get().(*[]byte)
	buf := AppendShipsPayload((*bp)[:0], ships)
	err := s.AppendPayload(buf)
	*bp = buf[:0]
	payloadPool.Put(bp)
	return err
}

// Checkpoint rotates the log, captures a snapshot, writes it, and
// deletes the superseded generations. The rotation happens first and the
// capture runs with NO store lock held: flush paths append to the log
// while holding system/workspace locks that capture also needs, so
// capturing under the store lock would deadlock them. Correctness does
// not need the lock: every record in a pre-rotation segment committed
// before the capture started, so its effect is in the snapshot, and a
// record racing into the new segment during capture replays idempotently
// over it. A crash between rotation and the snapshot write leaves
// snap-N + wal-N + wal-(N+1), which Open replays in order.
func (s *Store) Checkpoint(capture func() (*Snapshot, error)) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if m := s.obsM.Load(); m != nil {
		start := time.Now()
		defer func() {
			m.checkpoints.Inc()
			m.checkpointSecs.Observe(time.Since(start))
			if log := s.obsLog.Load(); log != nil {
				log.Debug("checkpoint finished", "seq", s.Seq(), "duration", time.Since(start))
			}
		}()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: store is closed")
	}
	// Drain the old segment to disk before anything depends on it, then
	// swap in the new one. An empty tip segment is reused instead of
	// rotated: a checkpoint retry after a failed snapshot write (disk
	// full, permissions) must not mint a fresh near-empty generation per
	// attempt — records racing into the reused segment during capture
	// replay idempotently over the snapshot, exactly as with a rotated
	// one.
	if err := s.wal.Barrier(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: draining log before checkpoint: %w", err)
	}
	newSeq := s.seq
	var old *walAppender
	if s.wal.Size() > 0 {
		newSeq = s.seq + 1
		f, err := os.OpenFile(walPath(s.dir, newSeq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("store: rotating log: %w", err)
		}
		old = s.wal
		s.wal = newWALAppender(f, s.opts.Fsync, s.opts.FsyncInterval, &s.obsM)
		s.seq = newSeq
	}
	s.mu.Unlock()

	if old != nil {
		if err := old.Close(); err != nil {
			return fmt.Errorf("store: closing rotated log: %w", err)
		}
	}
	snap, err := capture()
	if err != nil {
		return err
	}
	if err := writeSnapshotFile(s.dir, snapPath(s.dir, newSeq), snap); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	// The snapshot covers every older generation; delete them all.
	seqs, err := generations(s.dir)
	if err == nil {
		for _, q := range seqs {
			if q < newSeq {
				os.Remove(walPath(s.dir, q))
				os.Remove(snapPath(s.dir, q))
			}
		}
	}
	return syncDir(s.dir)
}

// Sync forces everything queued so far to disk regardless of policy
// (except FsyncOff, where it only drains the queue to the OS).
func (s *Store) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return fmt.Errorf("store: store is closed")
	}
	return s.wal.Barrier()
}

// Close drains and syncs the log and closes the store. Further appends
// fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
