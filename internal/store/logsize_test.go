package store

import (
	"os"
	"testing"
)

// TestLogSizeAndNoWaitDurability covers the serving-layer additions to
// the store: LogSize tracks segment growth and resets on checkpoint, and
// LogFlushNoWait + WaitDurable together give FsyncAlways callers
// durability without an fsync inside their critical sections.
func TestLogSizeAndNoWaitDurability(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.LogSize(); got != 0 {
		t.Fatalf("fresh log size = %d", got)
	}
	if err := st.LogFlushNoWait("alice", testJournal()); err != nil {
		t.Fatal(err)
	}
	grown := st.LogSize()
	if grown <= 0 {
		t.Fatalf("log size did not grow after append: %d", grown)
	}
	if err := st.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	// After the barrier the record is on disk.
	f, err := os.Open(walPath(dir, st.Seq()))
	if err != nil {
		t.Fatal(err)
	}
	payloads, valid, truncated, err := readFrames(f)
	f.Close()
	if err != nil || truncated || len(payloads) != 1 {
		t.Fatalf("after WaitDurable: %d records, truncated=%v, err=%v", len(payloads), truncated, err)
	}
	if valid != grown {
		t.Fatalf("on-disk valid prefix %d != LogSize %d", valid, grown)
	}

	// Checkpoint rotates: the new segment starts empty and the
	// generation advances.
	seq := st.Seq()
	if err := st.Checkpoint(func() (*Snapshot, error) { return &Snapshot{}, nil }); err != nil {
		t.Fatal(err)
	}
	if st.Seq() != seq+1 {
		t.Fatalf("checkpoint did not advance generation: %d -> %d", seq, st.Seq())
	}
	if got := st.LogSize(); got != 0 {
		t.Fatalf("log size after rotation = %d, want 0", got)
	}
}

// TestLogSizeRecoveredPrefix reopens a directory and checks the tip
// segment's recovered bytes count toward LogSize (the auto-checkpoint
// trigger must see a grown log even before new appends).
func TestLogSizeRecoveredPrefix(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogFlush("alice", testJournal()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(rec.Records))
	}
	if st2.LogSize() <= 0 {
		t.Fatalf("reopened log size = %d, want the recovered prefix", st2.LogSize())
	}
}
