package store

import (
	"lbtrust/internal/obs"
)

// Metrics aggregates durability-layer observability: WAL append volume,
// group-commit and fsync latency, and checkpoint cost. A nil *Metrics
// disables everything; instrumented sites pay one pointer load and a
// branch, so the append hot path is unchanged when observability is off.
type Metrics struct {
	walAppends     *obs.Counter
	walAppendBytes *obs.Counter
	walCommits     *obs.Counter
	walCommitSecs  *obs.Histogram
	walFsyncSecs   *obs.Histogram

	checkpoints    *obs.Counter
	checkpointSecs *obs.Histogram
}

// NewMetrics registers the store metric families on r (nil r returns nil
// — the disabled configuration).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		walAppends:     r.Counter("lb_store_wal_appends_total", "records queued on the write-ahead log"),
		walAppendBytes: r.Counter("lb_store_wal_append_bytes_total", "framed bytes queued on the write-ahead log"),
		walCommits:     r.Counter("lb_store_wal_commits_total", "group commits (write+flush+fsync batches) of the log"),
		walCommitSecs: r.Histogram("lb_store_wal_commit_seconds",
			"group-commit latency: buffered writes, flush, and fsync of one batch"),
		walFsyncSecs: r.Histogram("lb_store_wal_fsync_seconds",
			"fsync portion of a group commit (absent under -fsync off)"),
		checkpoints: r.Counter("lb_store_checkpoints_total", "checkpoints taken (snapshot written, log rotated)"),
		checkpointSecs: r.Histogram("lb_store_checkpoint_seconds",
			"checkpoint duration: drain, rotate, capture, snapshot write, GC"),
	}
}

// SetObs attaches observability to the store. Metrics land on o's
// registry and log lines on a store-scoped logger; the active WAL
// appender (and every appender a later checkpoint rotation creates)
// shares the same metrics through the store's atomic slot, so SetObs can
// be called while commits are in flight.
func (s *Store) SetObs(o *obs.Obs) {
	s.obsM.Store(NewMetrics(o.Reg()))
	if o == nil || o.Log == nil {
		s.obsLog.Store(nil)
	} else {
		s.obsLog.Store(o.Logger("store"))
	}
}
