package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lbtrust/internal/datalog"
	"lbtrust/internal/workspace"
)

func testJournal() *workspace.FlushJournal {
	code := datalog.NewCode(datalog.MustParseClause(`says(alice, bob, [| access(P, o1, read). |]).`))
	return &workspace.FlushJournal{
		Facts: []workspace.FactChange{
			{Pred: "says", Tuple: datalog.NewTuple(datalog.Sym("alice"), datalog.Sym("bob"), code)},
			{Pred: "old", Tuple: datalog.NewTuple(datalog.Int(-3), datalog.String("x\ty\nz")), Retract: true},
			{Pred: "prin", Tuple: datalog.NewTuple(datalog.Sym("alice"))},
		},
		Changed: map[string][]datalog.Tuple{
			"rule": {datalog.NewTuple(code)},
			"arg":  {datalog.NewTuple(datalog.Entity{Sort: "atom", ID: 4}, datalog.Int(1), datalog.Entity{Sort: "term", ID: 5})},
		},
		Schema: []workspace.SchemaChange{
			{Kind: workspace.SchemaRuleAdd, Rule: workspace.RuleChange{Code: code, Owner: datalog.Sym("alice")}},
			{Kind: workspace.SchemaRuleAdd, Rule: workspace.RuleChange{Code: code, Derived: true}},
			{Kind: workspace.SchemaRuleRemove, Code: code},
			{Kind: workspace.SchemaConstraintAdd, Constraint: workspace.ConstraintChange{AuxID: 3, Label: "exp3", Source: "p(V0)->q(V0)."}},
			{Kind: workspace.SchemaConstraintRemove, Label: "exp3"},
		},
	}
}

func TestFlushRecordRoundTrip(t *testing.T) {
	j := testJournal()
	payload := EncodeFlushPayload("alice", j)
	r, err := parseRecord(payload)
	if err != nil {
		t.Fatalf("parseRecord: %v", err)
	}
	principal, back, err := DecodeFlush(r)
	if err != nil {
		t.Fatalf("DecodeFlush: %v", err)
	}
	if principal != "alice" {
		t.Errorf("principal = %q", principal)
	}
	if len(back.Facts) != len(j.Facts) {
		t.Fatalf("facts round trip: %d ops, want %d", len(back.Facts), len(j.Facts))
	}
	for i, f := range back.Facts {
		want := j.Facts[i]
		if f.Pred != want.Pred || f.Retract != want.Retract || !f.Tuple.Equal(want.Tuple) {
			t.Errorf("facts[%d] = %+v, want %+v (order and retract flags must survive)", i, f, want)
		}
	}
	if len(back.Changed["rule"]) != 1 || len(back.Changed["arg"]) != 1 {
		t.Errorf("changed round trip: %+v", back.Changed)
	}
	if !back.Changed["arg"][0].Equal(j.Changed["arg"][0]) {
		t.Errorf("entity tuple changed: %v vs %v", back.Changed["arg"][0], j.Changed["arg"][0])
	}
	if len(back.Schema) != len(j.Schema) {
		t.Fatalf("schema round trip: %d ops, want %d", len(back.Schema), len(j.Schema))
	}
	for i, op := range back.Schema {
		want := j.Schema[i]
		if op.Kind != want.Kind {
			t.Errorf("schema[%d] kind = %d, want %d (order must be preserved)", i, op.Kind, want.Kind)
		}
		switch op.Kind {
		case workspace.SchemaRuleAdd:
			if op.Rule.Owner != want.Rule.Owner || op.Rule.Derived != want.Rule.Derived || op.Rule.Code.Key() != want.Rule.Code.Key() {
				t.Errorf("schema[%d] rule round trip: %+v", i, op.Rule)
			}
		case workspace.SchemaRuleRemove:
			if op.Code.Key() != want.Code.Key() {
				t.Errorf("schema[%d] rule-remove round trip", i)
			}
		case workspace.SchemaConstraintAdd:
			if op.Constraint != want.Constraint {
				t.Errorf("schema[%d] constraint round trip: %+v", i, op.Constraint)
			}
		case workspace.SchemaConstraintRemove:
			if op.Label != want.Label {
				t.Errorf("schema[%d] constraint-remove round trip", i)
			}
		}
	}
}

// TestWALTruncationAtEveryOffset simulates a crash after every possible
// byte count: the recovered prefix must always be a clean record
// sequence, never an error or panic.
func TestWALTruncationAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	j := testJournal()
	const records = 5
	for i := 0; i < records; i++ {
		if err := st.LogFlush("alice", j); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := walPath(dir, 0)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recordSize := len(full) / records

	for cut := 0; cut <= len(full); cut += 7 {
		sub := t.TempDir()
		cutPath := walPath(sub, 0)
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, rec, err := Open(sub, Options{Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		wantRecords := cut / recordSize
		if len(rec.Records) != wantRecords {
			t.Errorf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), wantRecords)
		}
		if (cut%recordSize != 0) != rec.Truncated {
			t.Errorf("cut=%d: truncated=%v", cut, rec.Truncated)
		}
		// The reopened log must accept appends after the truncation point
		// and recover them on the next open.
		if err := st2.LogFlush("alice", j); err != nil {
			t.Fatalf("cut=%d: append after truncate: %v", cut, err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2, err := Open(sub, Options{Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(rec2.Records) != wantRecords+1 {
			t.Errorf("cut=%d: after re-append recovered %d records, want %d", cut, len(rec2.Records), wantRecords+1)
		}
	}
}

// TestWALBitFlipEndsPrefix flips one byte in the middle of the log: the
// CRC must reject the damaged record and everything after it.
func TestWALBitFlipEndsPrefix(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	j := testJournal()
	for i := 0; i < 4; i++ {
		if err := st.LogFlush("alice", j); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	path := walPath(dir, 0)
	data, _ := os.ReadFile(path)
	recordSize := len(data) / 4
	// Flip a payload byte inside the third record.
	data[2*recordSize+frameHeaderSize+10] ^= 0x40
	os.WriteFile(path, data, 0o644)

	_, rec, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || !rec.Truncated {
		t.Errorf("recovered %d records (truncated=%v), want 2 truncated", len(rec.Records), rec.Truncated)
	}
}

// TestTornSnapshotFallsBack verifies that a snapshot missing its end
// marker is ignored in favor of the previous generation.
func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	snap1 := &Snapshot{System: SystemState{Nodes: []string{"n1"}}}
	if err := st.Checkpoint(func() (*Snapshot, error) { return snap1, nil }); err != nil {
		t.Fatal(err)
	}
	oldSeq := st.Seq()
	// Grow the log so the next checkpoint rotates to a new generation (an
	// empty tip segment is reused, not rotated).
	if err := st.LogFlush("alice", testJournal()); err != nil {
		t.Fatal(err)
	}
	snap2 := &Snapshot{System: SystemState{Nodes: []string{"n1", "n2"}}}
	if err := st.Checkpoint(func() (*Snapshot, error) { return snap2, nil }); err != nil {
		t.Fatal(err)
	}
	newSeq := st.Seq()
	if newSeq == oldSeq {
		t.Fatalf("checkpoint over a grown log did not rotate (seq %d)", newSeq)
	}
	st.Close()

	// Only the newest generation survives a checkpoint; recreate an older
	// one, then tear the newest snapshot.
	if err := writeSnapshotFile(dir, snapPath(dir, oldSeq), snap1); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(walPath(dir, oldSeq), nil, 0o644)
	data, err := os.ReadFile(snapPath(dir, newSeq))
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(snapPath(dir, newSeq), data[:len(data)-4], 0o644) // cut the end marker's frame

	_, rec, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || len(rec.Snapshot.System.Nodes) != 1 {
		t.Fatalf("recovery did not fall back to generation 1: %+v", rec.Snapshot)
	}
}

func TestCheckpointRotatesAndDeletes(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	j := testJournal()
	st.LogFlush("alice", j)
	if err := st.Checkpoint(func() (*Snapshot, error) {
		return &Snapshot{System: SystemState{Nodes: []string{"local"}}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	st.LogFlush("alice", j)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly one snapshot + one log", names)
	}
	if _, err := os.Stat(walPath(dir, 0)); !os.IsNotExist(err) {
		t.Error("old log generation not deleted")
	}
	_, rec, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || len(rec.Records) != 1 {
		t.Errorf("recovered snapshot=%v records=%d, want snapshot + 1 record", rec.Snapshot != nil, len(rec.Records))
	}
}

// TestFsyncAlwaysDurableBeforeReturn checks the record is on disk when
// Append returns under FsyncAlways.
func TestFsyncAlwaysDurableBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LogFlush("alice", testJournal()); err != nil {
		t.Fatal(err)
	}
	// Read the file without closing the store: the record must be there.
	f, err := os.Open(walPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payloads, _, truncated, err := readFrames(f)
	if err != nil || truncated || len(payloads) != 1 {
		t.Fatalf("on-disk log after FsyncAlways append: %d records, truncated=%v, err=%v", len(payloads), truncated, err)
	}
}

func TestSnapshotWorkspaceStateRoundTrip(t *testing.T) {
	ws := workspace.New("alice")
	if err := ws.LoadProgram(`
		e0: export[U1](U2) -> prin(U1), prin(U2).
		r1: out(X) <- src(X).
		c1: src(X) -> allowed(X).
		allowed(a). allowed(b). src(a). prin(alice). prin(bob).
	`); err != nil {
		t.Fatal(err)
	}
	st := ws.CaptureState()
	records := encodeWorkspaceState(st)
	b := newWSBuilder(datalog.NewDecoder())
	for _, r := range records {
		payload := r.encode()
		parsed, err := parseRecord(payload)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := b.apply(parsed); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	states := b.states2()
	if len(states) != 1 {
		t.Fatalf("rebuilt %d states", len(states))
	}
	got := states[0]
	re := workspace.New("alice")
	if err := re.RestoreState(got); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := re.FinishRestore(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for _, pred := range []string{"allowed", "src", "out", "prin", "active"} {
		want := ws.Facts(pred)
		gotFacts := re.Facts(pred)
		if len(want) != len(gotFacts) {
			t.Errorf("%s: %d vs %d facts", pred, len(gotFacts), len(want))
			continue
		}
		for i := range want {
			if !want[i].Equal(gotFacts[i]) {
				t.Errorf("%s[%d]: %v vs %v", pred, i, gotFacts[i], want[i])
			}
		}
	}
	// The restored workspace enforces the restored constraint.
	err := re.Update(func(tx *workspace.Tx) error { return tx.Assert("src(zzz)") })
	if err == nil {
		t.Error("restored constraint c1 not enforced")
	}
	if err := ws.Update(func(tx *workspace.Tx) error { return tx.Assert("src(zzz)") }); err == nil {
		t.Error("original constraint c1 not enforced (test invalid)")
	}
}

func TestGenerationsScan(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"snap-00000003.snap", "wal-00000003.log", "wal-00000007.log", "junk.txt"} {
		os.WriteFile(filepath.Join(dir, name), nil, 0o644)
	}
	got, err := generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("generations = %v, want [3 7]", got)
	}
}

func TestRecordHeaderRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		[]byte(""),
		[]byte(`flush "unterminated`),
		[]byte("flush noquotes"),
	} {
		if r, err := parseRecord(bad); err == nil && len(r.Fields) > 0 {
			t.Errorf("parseRecord(%q) accepted fields %v", bad, r.Fields)
		}
	}
	// A record with a bad op line must error in DecodeFlush, not panic.
	r, err := parseRecord([]byte("flush \"alice\" \"0\"\n?? bogus"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFlush(r); err == nil {
		t.Error("DecodeFlush accepted bogus op line")
	}
}

func TestFrameScannerStopsAtOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	frame := appendFrame(nil, []byte("hello"))
	buf.Write(frame)
	// A frame claiming 2GB: scanner must stop, not allocate.
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	payloads, _, truncated, err := readFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || !truncated {
		t.Errorf("scan = %d records truncated=%v, want 1 truncated", len(payloads), truncated)
	}
}

// TestCorruptOnlySnapshotErrors: a directory whose only snapshot is
// unreadable must fail to open, not come up as a silently empty system.
func TestCorruptOnlySnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	st.LogFlush("alice", testJournal())
	if err := st.Checkpoint(func() (*Snapshot, error) {
		return &Snapshot{System: SystemState{Nodes: []string{"local"}}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	data, err := os.ReadFile(snapPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	os.WriteFile(snapPath(dir, 1), data, 0o600)
	if _, _, err := Open(dir, Options{Fsync: FsyncOff}); err == nil {
		t.Fatal("Open accepted a directory whose only snapshot is corrupt")
	}
}

// TestInterruptedCheckpointReplaysBothSegments: a crash between log
// rotation and the snapshot write leaves snap-N, wal-N, wal-N+1;
// recovery must replay both segments on top of snap-N.
func TestInterruptedCheckpointReplaysBothSegments(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{System: SystemState{Nodes: []string{"local"}}}
	if err := writeSnapshotFile(dir, snapPath(dir, 1), snap); err != nil {
		t.Fatal(err)
	}
	j := testJournal()
	var walA, walB []byte
	walA = appendFrame(walA, EncodeFlushPayload("alice", j))
	walA = appendFrame(walA, EncodeFlushPayload("alice", j))
	walB = appendFrame(walB, EncodeFlushPayload("bob", j))
	os.WriteFile(walPath(dir, 1), walA, 0o600)
	os.WriteFile(walPath(dir, 2), walB, 0o600)

	st, rec, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || len(rec.Records) != 3 {
		t.Fatalf("recovered snapshot=%v records=%d, want snapshot + 3 records across both segments", rec.Snapshot != nil, len(rec.Records))
	}
	if p, _, _ := DecodeFlush(rec.Records[2]); p != "bob" {
		t.Errorf("segment order wrong: last record from %q, want bob", p)
	}
	// New appends must land in the newest segment.
	if err := st.LogFlush("carol", j); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 4 {
		t.Errorf("after append: %d records, want 4", len(rec2.Records))
	}
}

// TestWALFilePermissions: the log carries key material; it must not be
// world-readable.
func TestWALFilePermissions(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	st.LogFlush("alice", testJournal())
	if err := st.Checkpoint(func() (*Snapshot, error) { return &Snapshot{}, nil }); err != nil {
		t.Fatal(err)
	}
	st.Close()
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode().Perm()&0o077 != 0 {
			t.Errorf("%s has mode %v, want no group/other access", e.Name(), info.Mode())
		}
	}
}
