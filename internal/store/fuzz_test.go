package store

import (
	"bytes"
	"testing"

	"lbtrust/internal/datalog"
)

// FuzzReadFrames feeds arbitrary bytes to the log scanner: it must never
// panic, must only return CRC-clean payloads, and the valid-prefix length
// it reports must itself rescan to the same records (the truncation
// recovery invariant).
func FuzzReadFrames(f *testing.F) {
	var good []byte
	good = appendFrame(good, []byte("flush \"alice\" \"0\""))
	good = appendFrame(good, EncodeFlushPayload("bob", testJournal()))
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, truncated, err := readFrames(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("readFrames returned error: %v", err)
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input %d", valid, len(data))
		}
		if !truncated && valid != int64(len(data)) {
			t.Fatalf("not truncated but valid %d != len %d", valid, len(data))
		}
		again, validAgain, _, _ := readFrames(bytes.NewReader(data[:valid]))
		if len(again) != len(payloads) || validAgain != valid {
			t.Fatalf("rescan of valid prefix: %d/%d records, %d/%d bytes",
				len(again), len(payloads), validAgain, valid)
		}
		// Every recovered payload must at worst fail to parse — never
		// panic — through the record and flush decoders.
		for _, p := range payloads {
			r, err := parseRecord(p)
			if err != nil {
				continue
			}
			if r.Kind == KindFlush {
				_, _, _ = DecodeFlush(r)
			}
		}
	})
}

// FuzzDecodeValue checks the tagged value codec never panics and
// round-trips whatever it accepts.
func FuzzDecodeValue(f *testing.F) {
	for _, s := range []string{
		`y"alice"`, `s"x\ty"`, `i-9`, `e"atom"3`, `c"p(V0)."`, `p"export"y"bob"`,
		`y"unterminated`, `q"nope"`, ``, `i`, `c"broken(`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := datalog.DecodeValue(s)
		if err != nil {
			return
		}
		enc := datalog.EncodeValue(v)
		back, err := datalog.DecodeValue(enc)
		if err != nil {
			t.Fatalf("re-decode of %q (from %q): %v", enc, s, err)
		}
		if back.Key() != v.Key() {
			t.Fatalf("round trip of %q: %q != %q", s, back.Key(), v.Key())
		}
	})
}
