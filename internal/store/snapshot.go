package store

import (
	"encoding/base64"
	"fmt"
	"os"
	"strconv"

	"lbtrust/internal/datalog"
	"lbtrust/internal/workspace"
)

// SystemState is the distribution- and identity-level half of a snapshot:
// everything outside the workspaces that a recovered system needs.
type SystemState struct {
	// Nodes in creation order.
	Nodes []string
	// Principals in creation order, each with its hosting node and active
	// authentication scheme.
	Principals []PrincipalState
	// DeliveryMaps lists source→destination predicate routes.
	DeliveryMaps [][2]string
	// Ships is the shipped-tuple suppression set: restoring it is what
	// keeps recovery from re-delivering everything on the first Sync.
	Ships []ShipRecord
	// Keys is the cryptographic key material (RSA pairs, shared secrets).
	Keys []KeyRecord
	// Gen is the shipped set's generation counter at capture time.
	Gen uint64
}

// PrincipalState describes one principal's placement and scheme.
type PrincipalState struct {
	Name   string
	Node   string
	Scheme string
}

// Snapshot is a full system image: system state plus every workspace.
type Snapshot struct {
	System     SystemState
	Workspaces []*workspace.WorkspaceState
}

// encodeSnapshot renders a snapshot as a record stream. The snap-end
// record is the commit marker: a file without it (a crash mid-write, even
// though snapshots are written to a temp file and renamed) is ignored by
// recovery.
func encodeSnapshot(s *Snapshot) [][]byte {
	var records []*Record
	records = append(records, &Record{Kind: KindSnapBegin, Fields: []string{
		strconv.Itoa(snapshotVersion), strconv.FormatUint(s.System.Gen, 10),
	}})
	for _, n := range s.System.Nodes {
		records = append(records, &Record{Kind: KindNode, Fields: []string{n}})
	}
	for _, p := range s.System.Principals {
		records = append(records, &Record{Kind: KindPrin, Fields: []string{p.Name, p.Node}})
		if p.Scheme != "" {
			records = append(records, &Record{Kind: KindScheme, Fields: []string{p.Name, p.Scheme}})
		}
	}
	for _, m := range s.System.DeliveryMaps {
		records = append(records, &Record{Kind: KindMap, Fields: []string{m[0], m[1]}})
	}
	for _, k := range s.System.Keys {
		records = append(records, EncodeKey(k))
	}
	if len(s.System.Ships) > 0 {
		records = append(records, EncodeShips(s.System.Ships))
	}
	for _, ws := range s.Workspaces {
		records = append(records, encodeWorkspaceState(ws)...)
	}
	records = append(records, &Record{Kind: KindSnapEnd})
	out := make([][]byte, len(records))
	for i, r := range records {
		out[i] = r.encode()
	}
	return out
}

// EncodeKey renders key material as a record.
func EncodeKey(k KeyRecord) *Record {
	return &Record{
		Kind:   KindKey,
		Fields: []string{k.Kind, k.Name},
		Lines:  []string{base64.StdEncoding.EncodeToString(k.Data)},
	}
}

// DecodeKey parses a key record.
func DecodeKey(r *Record) (KeyRecord, error) {
	kind, err := r.field(0)
	if err != nil {
		return KeyRecord{}, err
	}
	name, err := r.field(1)
	if err != nil {
		return KeyRecord{}, err
	}
	if len(r.Lines) != 1 {
		return KeyRecord{}, fmt.Errorf("store: key record for %s has %d body lines", name, len(r.Lines))
	}
	data, err := base64.StdEncoding.DecodeString(r.Lines[0])
	if err != nil {
		return KeyRecord{}, fmt.Errorf("store: key record for %s: %w", name, err)
	}
	return KeyRecord{Kind: kind, Name: name, Data: data}, nil
}

// decodeSnapshot rebuilds a Snapshot from a record stream. It fails
// unless the stream starts with snap-begin and ends with snap-end (the
// commit marker).
func decodeSnapshot(payloads [][]byte, dec *datalog.Decoder) (*Snapshot, error) {
	if len(payloads) == 0 {
		return nil, fmt.Errorf("store: empty snapshot")
	}
	s := &Snapshot{}
	ws := newWSBuilder(dec)
	ended := false
	for i, payload := range payloads {
		r, err := parseRecord(payload)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			if r.Kind != KindSnapBegin {
				return nil, fmt.Errorf("store: snapshot starts with %s, want %s", r.Kind, KindSnapBegin)
			}
			v, err := r.field(0)
			if err != nil {
				return nil, err
			}
			if v != strconv.Itoa(snapshotVersion) {
				return nil, fmt.Errorf("store: unsupported snapshot version %s", v)
			}
			if len(r.Fields) > 1 {
				if gen, err := strconv.ParseUint(r.Fields[1], 10, 64); err == nil {
					s.System.Gen = gen
				}
			}
			continue
		}
		if ended {
			return nil, fmt.Errorf("store: records after snapshot end marker")
		}
		switch r.Kind {
		case KindSnapEnd:
			ended = true
		case KindNode:
			n, err := r.field(0)
			if err != nil {
				return nil, err
			}
			s.System.Nodes = append(s.System.Nodes, n)
		case KindPrin:
			name, err := r.field(0)
			if err != nil {
				return nil, err
			}
			node, err := r.field(1)
			if err != nil {
				return nil, err
			}
			s.System.Principals = append(s.System.Principals, PrincipalState{Name: name, Node: node})
		case KindScheme:
			name, err := r.field(0)
			if err != nil {
				return nil, err
			}
			scheme, err := r.field(1)
			if err != nil {
				return nil, err
			}
			for i := range s.System.Principals {
				if s.System.Principals[i].Name == name {
					s.System.Principals[i].Scheme = scheme
				}
			}
		case KindMap:
			src, err := r.field(0)
			if err != nil {
				return nil, err
			}
			dst, err := r.field(1)
			if err != nil {
				return nil, err
			}
			s.System.DeliveryMaps = append(s.System.DeliveryMaps, [2]string{src, dst})
		case KindKey:
			k, err := DecodeKey(r)
			if err != nil {
				return nil, err
			}
			s.System.Keys = append(s.System.Keys, k)
		case KindShip:
			ships, err := DecodeShips(r)
			if err != nil {
				return nil, err
			}
			s.System.Ships = append(s.System.Ships, ships...)
		case KindWS, KindWSDecls, KindWSRules, KindWSCons, KindWSRel:
			if err := ws.apply(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("store: unknown snapshot record %s", r.Kind)
		}
	}
	if !ended {
		return nil, fmt.Errorf("store: snapshot missing end marker (torn write)")
	}
	s.Workspaces = ws.states2()
	return s, nil
}

// writeSnapshotFile writes the snapshot to path atomically: temp file,
// fsync, rename, directory fsync.
func writeSnapshotFile(dir, path string, s *Snapshot) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var buf []byte
	for _, payload := range encodeSnapshot(s) {
		buf = appendFrame(buf, payload)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// readSnapshotFile loads and validates a snapshot file.
func readSnapshotFile(path string, dec *datalog.Decoder) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payloads, _, truncated, err := readFrames(f)
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, fmt.Errorf("store: snapshot %s has a corrupt frame", path)
	}
	return decodeSnapshot(payloads, dec)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some platforms; ignore its error.
	_ = d.Sync()
	return nil
}
