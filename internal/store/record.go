package store

import (
	"fmt"
	"strconv"
	"strings"

	"lbtrust/internal/datalog"
	"lbtrust/internal/workspace"
)

// Record is one logical entry of the write-ahead log and of snapshot
// files: a kind, a list of header fields, and zero or more body lines.
// Fields are strconv-quoted on the header line; body lines are the
// newline-free encodings of record.go's codecs (tagged tuple lines,
// canonical rule text, base64 key material), so a record serializes as
// plain text inside its CRC frame:
//
//	flush "alice" 0
//	+ "says" y"alice"\ty"bob"\tc"…"
//	…
type Record struct {
	Kind   string
	Fields []string
	Lines  []string
}

// Record kinds. Workspace flushes and distribution events go to the WAL;
// snapshot files reuse the same kinds plus the ws-* state records,
// bracketed by snap-begin/snap-end.
const (
	KindFlush  = "flush"  // fields: principal, rebuilt; lines: flush ops
	KindNode   = "node"   // fields: node name
	KindPrin   = "prin"   // fields: principal, node
	KindScheme = "scheme" // fields: principal, scheme
	KindKey    = "key"    // fields: kind (rsa-priv|rsa-pub|shared), name/pair; lines: base64 material
	KindMap    = "map"    // fields: source pred, destination pred
	KindShip   = "ship"   // lines: shipped-set records
	KindReset  = "reset"  // fields: target principal

	KindSnapBegin = "snap-begin" // fields: format version
	KindSnapEnd   = "snap-end"
	KindWS        = "ws"       // fields: principal, auxSeq
	KindWSDecls   = "ws-decls" // fields: principal; lines: name arity partitioned
	KindWSRules   = "ws-rules" // fields: principal; lines: owner derived code
	KindWSCons    = "ws-cons"  // fields: principal; lines: auxID label source
	KindWSRel     = "ws-rel"   // fields: principal, base|derived, name, arity, partitioned; lines: tuples
)

// snapshotVersion versions the snapshot/WAL record format.
const snapshotVersion = 1

func (r *Record) encode() []byte {
	var b strings.Builder
	b.WriteString(r.Kind)
	for _, f := range r.Fields {
		b.WriteByte(' ')
		b.WriteString(strconv.Quote(f))
	}
	for _, l := range r.Lines {
		b.WriteByte('\n')
		b.WriteString(l)
	}
	return []byte(b.String())
}

func parseRecord(payload []byte) (*Record, error) {
	text := string(payload)
	head, rest, hasBody := strings.Cut(text, "\n")
	kind, fieldsText, _ := strings.Cut(head, " ")
	if kind == "" {
		return nil, fmt.Errorf("store: empty record kind")
	}
	r := &Record{Kind: kind}
	for fieldsText != "" {
		q, err := strconv.QuotedPrefix(fieldsText)
		if err != nil {
			return nil, fmt.Errorf("store: bad record header %q: %w", head, err)
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("store: bad record header %q: %w", head, err)
		}
		r.Fields = append(r.Fields, u)
		fieldsText = strings.TrimPrefix(fieldsText[len(q):], " ")
	}
	if hasBody {
		r.Lines = strings.Split(rest, "\n")
	}
	return r, nil
}

// field returns field i or an error naming the record kind.
func (r *Record) field(i int) (string, error) {
	if i >= len(r.Fields) {
		return "", fmt.Errorf("store: %s record missing field %d", r.Kind, i)
	}
	return r.Fields[i], nil
}

// ---- flush journal codec ----------------------------------------------------

// Flush op line prefixes.
const (
	opAssert  = "+"
	opRetract = "-"
	opDerived = "d"
	opRuleAdd = "r+"
	opRuleDel = "r-"
	opConsAdd = "c+"
	opConsDel = "c-"
)

// EncodeFlushPayload renders one workspace flush journal as a WAL record
// payload, appending into a single buffer: this runs on every committed
// transaction, so it avoids the per-line string garbage the generic
// Record encoder would produce.
func EncodeFlushPayload(principal string, j *workspace.FlushJournal) []byte {
	return AppendFlushPayload(nil, principal, j)
}

// AppendFlushPayload appends the flush record payload to dst, so callers
// can reuse (pool) the buffer.
func AppendFlushPayload(dst []byte, principal string, j *workspace.FlushJournal) []byte {
	buf := dst
	buf = append(buf, KindFlush...)
	buf = append(buf, ' ')
	buf = strconv.AppendQuote(buf, principal)
	buf = append(buf, ' ', '"')
	if j.Rebuilt {
		buf = append(buf, '1')
	} else {
		buf = append(buf, '0')
	}
	buf = append(buf, '"')
	addFact := func(op string, f workspace.FactChange) {
		buf = append(buf, '\n')
		buf = append(buf, op...)
		buf = append(buf, ' ')
		buf = strconv.AppendQuote(buf, f.Pred)
		buf = append(buf, ' ')
		buf = datalog.AppendTupleLine(buf, f.Tuple)
	}
	addTuples := func(op string, m map[string][]datalog.Tuple) {
		for _, pred := range sortedKeys(m) {
			for _, t := range m[pred] {
				addFact(op, workspace.FactChange{Pred: pred, Tuple: t})
			}
		}
	}
	for _, op := range j.Schema {
		buf = append(buf, '\n')
		switch op.Kind {
		case workspace.SchemaConstraintRemove:
			buf = append(buf, opConsDel...)
			buf = append(buf, ' ')
			buf = strconv.AppendQuote(buf, op.Label)
		case workspace.SchemaRuleRemove:
			buf = append(buf, opRuleDel...)
			buf = append(buf, ' ')
			buf = strconv.AppendQuote(buf, string(op.Code.Canonical()))
		case workspace.SchemaConstraintAdd:
			buf = append(buf, opConsAdd...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(op.Constraint.AuxID), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendQuote(buf, op.Constraint.Label)
			buf = append(buf, ' ')
			buf = strconv.AppendQuote(buf, op.Constraint.Source)
		case workspace.SchemaRuleAdd:
			buf = append(buf, opRuleAdd...)
			buf = append(buf, ' ')
			buf = strconv.AppendQuote(buf, string(op.Rule.Owner))
			if op.Rule.Derived {
				buf = append(buf, " 1 "...)
			} else {
				buf = append(buf, " 0 "...)
			}
			buf = strconv.AppendQuote(buf, string(op.Rule.Code.Canonical()))
		}
	}
	for _, f := range j.Facts {
		if f.Retract {
			addFact(opRetract, f)
		} else {
			addFact(opAssert, f)
		}
	}
	if !j.Rebuilt {
		addTuples(opDerived, j.Changed)
	}
	return buf
}

// DecodeFlush parses a flush record back into its journal.
func DecodeFlush(r *Record) (string, *workspace.FlushJournal, error) {
	return DecodeFlushWith(r, nil)
}

// DecodeFlushWith parses a flush record using a shared decoder, whose
// code memo recovery reuses across every record of a replay.
func DecodeFlushWith(r *Record, dec *datalog.Decoder) (principal string, j *workspace.FlushJournal, err error) {
	if r.Kind != KindFlush {
		return "", nil, fmt.Errorf("store: record kind %s is not a flush", r.Kind)
	}
	principal, err = r.field(0)
	if err != nil {
		return "", nil, err
	}
	rebuilt, err := r.field(1)
	if err != nil {
		return "", nil, err
	}
	j = &workspace.FlushJournal{Rebuilt: rebuilt == "1"}
	parseFact := func(rest string) (workspace.FactChange, error) {
		pred, tupleText, err := quotedField(rest)
		if err != nil {
			return workspace.FactChange{}, err
		}
		t, err := dec.DecodeTupleLine(strings.TrimPrefix(tupleText, " "))
		if err != nil {
			return workspace.FactChange{}, err
		}
		return workspace.FactChange{Pred: pred, Tuple: t}, nil
	}
	addTuple := func(m *map[string][]datalog.Tuple, rest string) error {
		f, err := parseFact(rest)
		if err != nil {
			return err
		}
		if *m == nil {
			*m = map[string][]datalog.Tuple{}
		}
		(*m)[f.Pred] = append((*m)[f.Pred], f.Tuple)
		return nil
	}
	for _, line := range r.Lines {
		if line == "" {
			continue
		}
		op, rest, _ := strings.Cut(line, " ")
		switch op {
		case opAssert:
			var f workspace.FactChange
			if f, err = parseFact(rest); err == nil {
				j.Facts = append(j.Facts, f)
			}
		case opRetract:
			var f workspace.FactChange
			if f, err = parseFact(rest); err == nil {
				f.Retract = true
				j.Facts = append(j.Facts, f)
			}
		case opDerived:
			err = addTuple(&j.Changed, rest)
		case opRuleAdd:
			var owner, codeText string
			var derived string
			owner, rest2, ferr := quotedField(rest)
			if ferr != nil {
				err = ferr
				break
			}
			rest2 = strings.TrimPrefix(rest2, " ")
			derived, rest2, _ = strings.Cut(rest2, " ")
			codeText, _, ferr = quotedField(rest2)
			if ferr != nil {
				err = ferr
				break
			}
			code, cerr := dec.Code(codeText)
			if cerr != nil {
				err = cerr
				break
			}
			j.Schema = append(j.Schema, workspace.SchemaChange{Kind: workspace.SchemaRuleAdd, Rule: workspace.RuleChange{
				Code: code, Owner: datalog.Sym(owner), Derived: derived == "1",
			}})
		case opRuleDel:
			codeText, _, ferr := quotedField(rest)
			if ferr != nil {
				err = ferr
				break
			}
			code, cerr := dec.Code(codeText)
			if cerr != nil {
				err = cerr
				break
			}
			j.Schema = append(j.Schema, workspace.SchemaChange{Kind: workspace.SchemaRuleRemove, Code: code})
		case opConsAdd:
			auxText, rest2, _ := strings.Cut(rest, " ")
			auxID, aerr := strconv.Atoi(auxText)
			if aerr != nil {
				err = fmt.Errorf("store: bad aux id %q: %w", auxText, aerr)
				break
			}
			label, rest2, ferr := quotedField(rest2)
			if ferr != nil {
				err = ferr
				break
			}
			source, _, ferr := quotedField(strings.TrimPrefix(rest2, " "))
			if ferr != nil {
				err = ferr
				break
			}
			j.Schema = append(j.Schema, workspace.SchemaChange{Kind: workspace.SchemaConstraintAdd, Constraint: workspace.ConstraintChange{
				AuxID: auxID, Label: label, Source: source,
			}})
		case opConsDel:
			label, _, ferr := quotedField(rest)
			if ferr != nil {
				err = ferr
				break
			}
			j.Schema = append(j.Schema, workspace.SchemaChange{Kind: workspace.SchemaConstraintRemove, Label: label})
		default:
			err = fmt.Errorf("store: unknown flush op %q", op)
		}
		if err != nil {
			return "", nil, fmt.Errorf("store: flush line %q: %w", line, err)
		}
	}
	return principal, j, nil
}

func quotedField(s string) (value, rest string, err error) {
	q, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", fmt.Errorf("store: bad quoted field in %q: %w", s, err)
	}
	u, err := strconv.Unquote(q)
	if err != nil {
		return "", "", err
	}
	return u, s[len(q):], nil
}

func sortedKeys(m map[string][]datalog.Tuple) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---- workspace state codec --------------------------------------------------

// encodeWorkspaceState renders one workspace snapshot as records.
func encodeWorkspaceState(st *workspace.WorkspaceState) []*Record {
	out := []*Record{{
		Kind:   KindWS,
		Fields: []string{st.Principal, strconv.Itoa(st.AuxSeq)},
	}}
	if len(st.Decls) > 0 {
		r := &Record{Kind: KindWSDecls, Fields: []string{st.Principal}}
		for _, d := range st.Decls {
			r.Lines = append(r.Lines, fmt.Sprintf("%s %d %s", strconv.Quote(d.Name), d.Arity, boolStr(d.Partitioned)))
		}
		out = append(out, r)
	}
	if len(st.Constraints) > 0 {
		r := &Record{Kind: KindWSCons, Fields: []string{st.Principal}}
		for _, c := range st.Constraints {
			r.Lines = append(r.Lines, fmt.Sprintf("%d %s %s", c.AuxID, strconv.Quote(c.Label), strconv.Quote(c.Source)))
		}
		out = append(out, r)
	}
	if len(st.Rules) > 0 {
		r := &Record{Kind: KindWSRules, Fields: []string{st.Principal}}
		for _, rc := range st.Rules {
			r.Lines = append(r.Lines, strconv.Quote(string(rc.Owner))+" "+boolStr(rc.Derived)+" "+strconv.Quote(string(rc.Code.Canonical())))
		}
		out = append(out, r)
	}
	rel := func(section string, rs workspace.RelationState) *Record {
		r := &Record{Kind: KindWSRel, Fields: []string{
			st.Principal, section, rs.Name, strconv.Itoa(rs.Arity), boolStr(rs.Partitioned),
		}}
		for _, t := range rs.Tuples {
			r.Lines = append(r.Lines, datalog.EncodeTupleLine(t))
		}
		return r
	}
	for _, rs := range st.Base {
		out = append(out, rel("base", rs))
	}
	for _, rs := range st.Derived {
		out = append(out, rel("derived", rs))
	}
	return out
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// wsBuilder accumulates ws-* records into WorkspaceStates, preserving the
// order workspaces appear in the snapshot.
type wsBuilder struct {
	states map[string]*workspace.WorkspaceState
	order  []string
	dec    *datalog.Decoder
}

func newWSBuilder(dec *datalog.Decoder) *wsBuilder {
	return &wsBuilder{states: map[string]*workspace.WorkspaceState{}, dec: dec}
}

func (b *wsBuilder) get(principal string) *workspace.WorkspaceState {
	if st, ok := b.states[principal]; ok {
		return st
	}
	st := &workspace.WorkspaceState{Principal: principal}
	b.states[principal] = st
	b.order = append(b.order, principal)
	return st
}

func (b *wsBuilder) apply(r *Record) error {
	principal, err := r.field(0)
	if err != nil {
		return err
	}
	st := b.get(principal)
	switch r.Kind {
	case KindWS:
		seqText, err := r.field(1)
		if err != nil {
			return err
		}
		st.AuxSeq, err = strconv.Atoi(seqText)
		return err
	case KindWSDecls:
		for _, line := range r.Lines {
			name, rest, err := quotedField(line)
			if err != nil {
				return err
			}
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fmt.Errorf("store: bad decl line %q", line)
			}
			arity, err := strconv.Atoi(parts[0])
			if err != nil {
				return err
			}
			st.Decls = append(st.Decls, workspace.Decl{Name: name, Arity: arity, Partitioned: parts[1] == "1"})
		}
	case KindWSCons:
		for _, line := range r.Lines {
			auxText, rest, _ := strings.Cut(line, " ")
			auxID, err := strconv.Atoi(auxText)
			if err != nil {
				return fmt.Errorf("store: bad constraint line %q: %w", line, err)
			}
			label, rest, err := quotedField(rest)
			if err != nil {
				return err
			}
			source, _, err := quotedField(strings.TrimPrefix(rest, " "))
			if err != nil {
				return err
			}
			st.Constraints = append(st.Constraints, workspace.ConstraintChange{AuxID: auxID, Label: label, Source: source})
		}
	case KindWSRules:
		for _, line := range r.Lines {
			owner, rest, err := quotedField(line)
			if err != nil {
				return err
			}
			rest = strings.TrimPrefix(rest, " ")
			derived, rest, _ := strings.Cut(rest, " ")
			codeText, _, err := quotedField(rest)
			if err != nil {
				return err
			}
			code, err := b.dec.Code(codeText)
			if err != nil {
				return err
			}
			st.Rules = append(st.Rules, workspace.RuleChange{Code: code, Owner: datalog.Sym(owner), Derived: derived == "1"})
		}
	case KindWSRel:
		if len(r.Fields) < 5 {
			return fmt.Errorf("store: ws-rel record missing fields")
		}
		arity, err := strconv.Atoi(r.Fields[3])
		if err != nil {
			return err
		}
		rs := workspace.RelationState{Name: r.Fields[2], Arity: arity, Partitioned: r.Fields[4] == "1"}
		for _, line := range r.Lines {
			t, err := b.dec.DecodeTupleLine(line)
			if err != nil {
				return fmt.Errorf("store: relation %s: %w", rs.Name, err)
			}
			if t.Len() != arity {
				return fmt.Errorf("store: relation %s: tuple arity %d, want %d", rs.Name, t.Len(), arity)
			}
			rs.Tuples = append(rs.Tuples, t)
		}
		switch r.Fields[1] {
		case "base":
			st.Base = append(st.Base, rs)
		case "derived":
			st.Derived = append(st.Derived, rs)
		default:
			return fmt.Errorf("store: unknown relation section %q", r.Fields[1])
		}
	default:
		return fmt.Errorf("store: unknown workspace record %s", r.Kind)
	}
	return nil
}

func (b *wsBuilder) states2() []*workspace.WorkspaceState {
	out := make([]*workspace.WorkspaceState, 0, len(b.order))
	for _, p := range b.order {
		out = append(out, b.states[p])
	}
	return out
}

// ---- distribution / system codecs -------------------------------------------

// ShipRecord mirrors one shipped-set entry of the distribution runtime.
type ShipRecord struct {
	Key    string
	Sender string
	Target string
	Gen    uint64
}

// EncodeShips renders shipped-set records (a pump round's worth, or a
// snapshot's whole set) as one WAL record.
func EncodeShips(ships []ShipRecord) *Record {
	r := &Record{Kind: KindShip}
	for _, s := range ships {
		r.Lines = append(r.Lines, string(appendShipLine(nil, s)))
	}
	return r
}

// EncodeShipsPayload is the direct-buffer form of EncodeShips, used on
// the Sync hot path.
func EncodeShipsPayload(ships []ShipRecord) []byte {
	return AppendShipsPayload(nil, ships)
}

// AppendShipsPayload appends the ship record payload to dst.
func AppendShipsPayload(dst []byte, ships []ShipRecord) []byte {
	buf := append(dst, KindShip...)
	for _, s := range ships {
		buf = append(buf, '\n')
		buf = appendShipLine(buf, s)
	}
	return buf
}

func appendShipLine(buf []byte, s ShipRecord) []byte {
	buf = strconv.AppendQuote(buf, s.Key)
	buf = append(buf, ' ')
	buf = strconv.AppendQuote(buf, s.Sender)
	buf = append(buf, ' ')
	buf = strconv.AppendQuote(buf, s.Target)
	buf = append(buf, ' ')
	return strconv.AppendUint(buf, s.Gen, 10)
}

// DecodeShips parses a ship record.
func DecodeShips(r *Record) ([]ShipRecord, error) {
	var out []ShipRecord
	for _, line := range r.Lines {
		if line == "" {
			continue
		}
		key, rest, err := quotedField(line)
		if err != nil {
			return nil, err
		}
		sender, rest, err := quotedField(strings.TrimPrefix(rest, " "))
		if err != nil {
			return nil, err
		}
		target, rest, err := quotedField(strings.TrimPrefix(rest, " "))
		if err != nil {
			return nil, err
		}
		gen, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: bad ship generation in %q: %w", line, err)
		}
		out = append(out, ShipRecord{Key: key, Sender: sender, Target: target, Gen: gen})
	}
	return out, nil
}

// KeyRecord carries cryptographic key material: Kind is rsa-priv, rsa-pub,
// or shared; Name is the principal (rsa) or the joined pair (shared).
type KeyRecord struct {
	Kind string
	Name string
	Data []byte
}
